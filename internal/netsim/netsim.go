// Package netsim models the IoT uplink between In-situ AI nodes and the
// Cloud: transfer time and transmit energy as linear functions of bytes
// moved. Table II's data-movement ratios and the uplink component of the
// paper's 30–70% energy saving are computed on these meters.
package netsim

import "fmt"

// Uplink characterizes one wireless link.
type Uplink struct {
	Name string
	// BandwidthBps is effective uplink throughput in bytes/s.
	BandwidthBps float64
	// EnergyPerByte is the node-side transmit energy in J/byte.
	EnergyPerByte float64
}

// WiFi returns a typical 802.11n IoT uplink: ~2 MB/s effective,
// ~100 nJ/bit transmit energy (0.8 µJ/byte).
func WiFi() Uplink {
	return Uplink{Name: "WiFi", BandwidthBps: 2e6, EnergyPerByte: 0.8e-6}
}

// LTE returns a cellular uplink: ~0.6 MB/s, ~1 µJ/bit (8 µJ/byte) —
// remote deployments like wildlife cameras.
func LTE() Uplink {
	return Uplink{Name: "LTE", BandwidthBps: 0.6e6, EnergyPerByte: 8e-6}
}

// TransferTime returns the seconds to move n bytes.
func (u Uplink) TransferTime(n int64) float64 {
	if u.BandwidthBps <= 0 {
		panic("netsim: uplink without bandwidth")
	}
	return float64(n) / u.BandwidthBps
}

// TransferEnergy returns the node joules to transmit n bytes.
func (u Uplink) TransferEnergy(n int64) float64 {
	return float64(n) * u.EnergyPerByte
}

// Meter accumulates uplink usage for one node or one experiment stage.
// Retransmissions (repeat deliveries after a drop or a corrupted
// transfer) are accounted separately so the fault-free data-movement
// series of Table II stays comparable while the extra cost of an
// imperfect link remains visible.
type Meter struct {
	Link    Uplink
	Bytes   int64
	Items   int64
	Seconds float64
	Joules  float64
	// Retransmits counts repeat deliveries; RetransmitBytes and
	// RetransmitJoules/RetransmitSeconds are their byte/energy/time cost.
	Retransmits      int64
	RetransmitBytes  int64
	RetransmitSecs   float64
	RetransmitJoules float64
	// Downloads counts first-attempt downlink deliveries (model pushes);
	// their cost is kept out of the uplink Bytes/Joules series so
	// Table II's data-movement ratios stay upload-only. Redelivery cost
	// still lands in the Retransmit accumulators.
	Downloads      int64
	DownlinkBytes  int64
	DownlinkSecs   float64
	DownlinkJoules float64
}

// NewMeter returns a meter over the given link.
func NewMeter(link Uplink) *Meter { return &Meter{Link: link} }

// Upload records moving n bytes (one logical item) over the link.
func (m *Meter) Upload(n int64) {
	m.UploadItems(n, 1)
}

// UploadItems records moving n bytes representing `items` samples.
func (m *Meter) UploadItems(n, items int64) {
	if n < 0 {
		panic(fmt.Sprintf("netsim: negative upload %d", n))
	}
	m.Bytes += n
	m.Items += items
	m.Seconds += m.Link.TransferTime(n)
	m.Joules += m.Link.TransferEnergy(n)
}

// Retransmit records re-sending n bytes after a failed delivery.
func (m *Meter) Retransmit(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("netsim: negative retransmit %d", n))
	}
	m.Retransmits++
	m.RetransmitBytes += n
	m.RetransmitSecs += m.Link.TransferTime(n)
	m.RetransmitJoules += m.Link.TransferEnergy(n)
}

// Download records the first transmit of n bytes down to the node.
func (m *Meter) Download(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("netsim: negative download %d", n))
	}
	m.Downloads++
	m.DownlinkBytes += n
	m.DownlinkSecs += m.Link.TransferTime(n)
	m.DownlinkJoules += m.Link.TransferEnergy(n)
}

// Reset clears the meter's accumulators (the link is kept).
func (m *Meter) Reset() {
	m.Bytes, m.Items, m.Seconds, m.Joules = 0, 0, 0, 0
	m.Retransmits, m.RetransmitBytes, m.RetransmitSecs, m.RetransmitJoules = 0, 0, 0, 0
	m.Downloads, m.DownlinkBytes, m.DownlinkSecs, m.DownlinkJoules = 0, 0, 0, 0
}
