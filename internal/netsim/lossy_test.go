package netsim

import "testing"

func deliveries(l *LossyLink, n int) []Delivery {
	out := make([]Delivery, n)
	for i := range out {
		out[i] = l.Transmit(1000)
	}
	return out
}

func TestLossyLinkDeterministicForSeed(t *testing.T) {
	cfg := FaultConfig{Seed: 42, CorruptProb: 0.3, DropProb: 0.2}
	a := deliveries(NewLossyLink(WiFi(), cfg), 200)
	b := deliveries(NewLossyLink(WiFi(), cfg), 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at transfer %d: %v vs %v", i, a[i], b[i])
		}
	}
	cfg.Seed = 43
	c := deliveries(NewLossyLink(WiFi(), cfg), 200)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical fault sequence")
	}
}

func TestLossyLinkRatesRoughlyMatch(t *testing.T) {
	l := NewLossyLink(WiFi(), FaultConfig{Seed: 7, CorruptProb: 0.25, DropProb: 0.25})
	const n = 4000
	deliveries(l, n)
	if l.Stats.Transfers != n {
		t.Fatalf("transfers = %d", l.Stats.Transfers)
	}
	for name, got := range map[string]int64{"corrupted": l.Stats.Corrupted, "dropped": l.Stats.Dropped} {
		frac := float64(got) / n
		if frac < 0.18 || frac > 0.32 {
			t.Fatalf("%s fraction %v far from configured 0.25", name, frac)
		}
	}
}

func TestLossyLinkPerfectByDefault(t *testing.T) {
	var cfg FaultConfig
	if cfg.Enabled() {
		t.Fatal("zero config should be a perfect link")
	}
	l := NewLossyLink(LTE(), cfg)
	for i, d := range deliveries(l, 100) {
		if d != DeliverOK {
			t.Fatalf("perfect link faulted at transfer %d: %v", i, d)
		}
	}
}

func TestLossyLinkOutageWindow(t *testing.T) {
	l := NewLossyLink(WiFi(), FaultConfig{Seed: 1, Outages: []Outage{{Start: 2, End: 5}}})
	got := deliveries(l, 8)
	for i, d := range got {
		want := DeliverOK
		if i >= 2 && i < 5 {
			want = DeliverDrop
		}
		if d != want {
			t.Fatalf("transfer %d = %v, want %v", i, d, want)
		}
	}
	if l.Stats.OutageDrops != 3 {
		t.Fatalf("outage drops = %d", l.Stats.OutageDrops)
	}
}

func TestCorruptPayloadChangesBytes(t *testing.T) {
	l := NewLossyLink(WiFi(), FaultConfig{Seed: 9, CorruptProb: 1})
	p := make([]byte, 64)
	orig := append([]byte(nil), p...)
	l.CorruptPayload(p)
	changed := false
	for i := range p {
		if p[i] != orig[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("CorruptPayload left the payload intact")
	}
	l.CorruptPayload(nil) // must not panic on empty payloads
}

func TestFaultConfigValidate(t *testing.T) {
	bad := []FaultConfig{
		{CorruptProb: -0.1},
		{DropProb: 1.5},
		{CorruptProb: 0.6, DropProb: 0.6},
		{Outages: []Outage{{Start: 5, End: 5}}},
		{Outages: []Outage{{Start: -1, End: 2}}},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
	ok := FaultConfig{CorruptProb: 0.5, DropProb: 0.5, Outages: []Outage{{Start: 0, End: 3}}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMeterRetransmitAccounting(t *testing.T) {
	m := NewMeter(WiFi())
	m.Upload(1000)
	m.Retransmit(500)
	m.Retransmit(500)
	if m.Bytes != 1000 || m.Items != 1 {
		t.Fatalf("retransmits leaked into primary accounting: %+v", m)
	}
	if m.Retransmits != 2 || m.RetransmitBytes != 1000 {
		t.Fatalf("retransmit counts wrong: %+v", m)
	}
	if m.RetransmitJoules <= 0 || m.RetransmitSecs <= 0 {
		t.Fatalf("retransmit energy/time not accounted: %+v", m)
	}
	m.Reset()
	if m.Retransmits != 0 || m.RetransmitBytes != 0 || m.RetransmitJoules != 0 || m.RetransmitSecs != 0 {
		t.Fatalf("Reset kept retransmit state: %+v", m)
	}
}
