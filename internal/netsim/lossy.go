// Fault injection for the Cloud↔node path: a seeded LossyLink wraps an
// Uplink and decides, per transfer, whether the payload arrives intact,
// arrives corrupted, or is lost entirely (random drop or a scheduled
// outage window). The paper's closed loop (Fig. 4) assumes a perfect
// wireless link; this layer lets the Table II / Fig. 25 experiments be
// replayed under the imperfect links real IoT deployments see, with the
// retransmission cost accounted on the same byte/energy meters.
package netsim

import (
	"fmt"
	"math"

	"insitu/internal/tensor"
)

// Delivery is the outcome of one simulated transfer.
type Delivery int

const (
	// DeliverOK means the payload arrived intact.
	DeliverOK Delivery = iota
	// DeliverCorrupt means the payload arrived with flipped bits (the
	// receiver's checksum is expected to catch it).
	DeliverCorrupt
	// DeliverDrop means the payload never arrived (loss or outage).
	DeliverDrop
)

// String implements fmt.Stringer.
func (d Delivery) String() string {
	switch d {
	case DeliverOK:
		return "ok"
	case DeliverCorrupt:
		return "corrupt"
	case DeliverDrop:
		return "drop"
	default:
		return fmt.Sprintf("Delivery(%d)", int(d))
	}
}

// Outage is a window of transfer sequence numbers [Start, End) during
// which every transfer is dropped — a modeled link blackout.
type Outage struct {
	Start, End int64
}

// Contains reports whether transfer number seq falls in the window.
func (o Outage) Contains(seq int64) bool { return seq >= o.Start && seq < o.End }

// PermanentOutage is a blackout covering every transfer a link will ever
// make — the fleet experiments use it to model a node that goes dark and
// never comes back, which must not stall the healthy nodes.
func PermanentOutage() Outage {
	return Outage{Start: 0, End: math.MaxInt64}
}

// FaultConfig parameterizes injected link faults. The zero value is a
// perfect link.
type FaultConfig struct {
	// Seed drives the per-transfer dice; the same seed replays the same
	// fault sequence.
	Seed uint64
	// CorruptProb is the probability a transfer arrives bit-flipped.
	CorruptProb float64
	// DropProb is the probability a transfer is lost outright.
	DropProb float64
	// Outages lists blackout windows in transfer sequence numbers.
	Outages []Outage
}

// Enabled reports whether the config injects any fault at all.
func (c FaultConfig) Enabled() bool {
	return c.CorruptProb > 0 || c.DropProb > 0 || len(c.Outages) > 0
}

// Validate rejects probabilities outside [0, 1] and inverted windows.
func (c FaultConfig) Validate() error {
	if c.CorruptProb < 0 || c.CorruptProb > 1 {
		return fmt.Errorf("netsim: corrupt probability %v outside [0,1]", c.CorruptProb)
	}
	if c.DropProb < 0 || c.DropProb > 1 {
		return fmt.Errorf("netsim: drop probability %v outside [0,1]", c.DropProb)
	}
	if c.CorruptProb+c.DropProb > 1 {
		return fmt.Errorf("netsim: corrupt+drop probability %v exceeds 1", c.CorruptProb+c.DropProb)
	}
	for _, o := range c.Outages {
		if o.End <= o.Start || o.Start < 0 {
			return fmt.Errorf("netsim: bad outage window [%d,%d)", o.Start, o.End)
		}
	}
	return nil
}

// LinkStats counts what the lossy link did to the traffic so far.
type LinkStats struct {
	Transfers   int64
	Corrupted   int64
	Dropped     int64 // random losses
	OutageDrops int64 // losses inside an outage window
}

// LossyLink injects faults into transfers over an Uplink. It is
// deterministic for a given FaultConfig.Seed: the n-th call to Transmit
// always yields the same outcome.
type LossyLink struct {
	Link  Uplink
	Cfg   FaultConfig
	Stats LinkStats

	rng *tensor.RNG
	seq int64
}

// NewLossyLink builds a seeded lossy link; it panics on an invalid
// config (programming error, like the Uplink bandwidth check).
func NewLossyLink(link Uplink, cfg FaultConfig) *LossyLink {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &LossyLink{Link: link, Cfg: cfg, rng: tensor.NewRNG(cfg.Seed)}
}

// LinkState is the replayable position of a LossyLink: the transfer
// sequence number, accumulated stats and the fault-dice RNG position.
// Restoring it makes the link continue the exact fault sequence an
// uninterrupted link would have produced.
type LinkState struct {
	Seq      int64
	Stats    LinkStats
	RNGState uint64
}

// Snapshot captures the link's current state for checkpointing.
func (l *LossyLink) Snapshot() LinkState {
	return LinkState{Seq: l.seq, Stats: l.Stats, RNGState: l.rng.State()}
}

// Restore rewinds the link to a snapshotted state.
func (l *LossyLink) Restore(st LinkState) {
	l.seq = st.Seq
	l.Stats = st.Stats
	l.rng.SetState(st.RNGState)
}

// Transmit advances the transfer sequence and rolls the fault dice for a
// payload of n bytes. Outage windows override the probabilistic faults.
func (l *LossyLink) Transmit(n int64) Delivery {
	seq := l.seq
	l.seq++
	l.Stats.Transfers++
	for _, o := range l.Cfg.Outages {
		if o.Contains(seq) {
			l.Stats.OutageDrops++
			return DeliverDrop
		}
	}
	// One draw decides the outcome so corrupt/drop stay mutually
	// exclusive and the sequence is replayable.
	u := l.rng.Float64()
	switch {
	case u < l.Cfg.DropProb:
		l.Stats.Dropped++
		return DeliverDrop
	case u < l.Cfg.DropProb+l.Cfg.CorruptProb:
		l.Stats.Corrupted++
		return DeliverCorrupt
	default:
		return DeliverOK
	}
}

// CorruptPayload flips a few bytes of p in place, simulating the bit
// errors of a DeliverCorrupt outcome. The flip positions come from the
// link's seeded RNG, so corruption patterns replay too.
func (l *LossyLink) CorruptPayload(p []byte) {
	if len(p) == 0 {
		return
	}
	flips := 1 + l.rng.Intn(3)
	for i := 0; i < flips; i++ {
		p[l.rng.Intn(len(p))] ^= byte(1 + l.rng.Intn(255))
	}
}
