package netsim

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"insitu/internal/tensor"
	"insitu/internal/wire"
)

// Proxy is a byte-stream man-in-the-middle for the wire protocol: it
// accepts connections, dials the real cloud, and pumps whole frames in
// both directions while dropping, corrupting or delaying them with
// seeded dice. Unlike LossyLink — which *simulates* a lossy medium
// inside the node's accounting — the proxy injects real transport
// faults that the endpoints must absorb with CRC checks,
// retransmission and idempotent command handling. It parses frames
// only enough to find their boundaries (wire.ReadRawFrame) and never
// touches the magic or length fields when corrupting, so the stream
// stays framed and the damage is always survivable.
type Proxy struct {
	cfg ProxyConfig
	ln  net.Listener

	// Dice are shared across connections; ordering between concurrent
	// streams is scheduling-dependent, which is fine — proxy faults model
	// a hostile real network, not a replayable experiment (LossyLink does
	// that). The seed still makes single-stream tests reproducible.
	mu  sync.Mutex
	rng *tensor.RNG

	stats ProxyStats

	closeOnce sync.Once
	done      chan struct{}
	wg        sync.WaitGroup

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// ProxyConfig parameterizes the injected faults. The zero value
// forwards everything untouched.
type ProxyConfig struct {
	Seed uint64
	// DropProb is the probability a frame silently vanishes.
	DropProb float64
	// CorruptProb is the probability a frame is forwarded with flipped
	// payload bytes (caught by the frame CRC at the receiver).
	CorruptProb float64
	// MaxDelay, when positive, holds each forwarded frame for a seeded
	// uniform duration in [0, MaxDelay) — enough to reorder a
	// retransmission past its original.
	MaxDelay time.Duration
}

// ProxyStats counts the proxy's interference. Read via Stats.
type ProxyStats struct {
	Forwarded int64
	Dropped   int64
	Corrupted int64
}

// NewProxy starts proxying: every connection accepted on ln is paired
// with a fresh dial to target, and frames flow through the fault dice
// until either side closes. Close stops the listener and tears down
// the live pairs.
func NewProxy(ln net.Listener, target string, cfg ProxyConfig) *Proxy {
	p := &Proxy{
		cfg:   cfg,
		ln:    ln,
		rng:   tensor.NewRNG(cfg.Seed),
		done:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.accept(target)
	return p
}

// Addr returns the proxy's listen address (what nodes dial).
func (p *Proxy) Addr() net.Addr { return p.ln.Addr() }

// Stats returns a snapshot of the interference counters.
func (p *Proxy) Stats() ProxyStats {
	return ProxyStats{
		Forwarded: atomic.LoadInt64(&p.stats.Forwarded),
		Dropped:   atomic.LoadInt64(&p.stats.Dropped),
		Corrupted: atomic.LoadInt64(&p.stats.Corrupted),
	}
}

// Close stops accepting, severs every live pair and waits for the
// pumps to drain.
func (p *Proxy) Close() {
	p.closeOnce.Do(func() {
		close(p.done)
		p.ln.Close()
		p.connMu.Lock()
		for c := range p.conns {
			c.Close()
		}
		p.connMu.Unlock()
	})
	p.wg.Wait()
}

func (p *Proxy) track(c net.Conn) {
	p.connMu.Lock()
	p.conns[c] = struct{}{}
	p.connMu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.connMu.Lock()
	delete(p.conns, c)
	p.connMu.Unlock()
}

func (p *Proxy) accept(target string) {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		backend, err := net.Dial("tcp", target)
		if err != nil {
			client.Close()
			continue
		}
		p.track(client)
		p.track(backend)
		p.wg.Add(2)
		go p.pump(client, backend)
		go p.pump(backend, client)
	}
}

// pump moves frames src→dst through the fault dice until either side
// dies, then severs both (a half-dead pair is useless to the
// endpoints, whose liveness model is the connection).
func (p *Proxy) pump(src, dst net.Conn) {
	defer p.wg.Done()
	defer p.untrack(src)
	defer src.Close()
	defer dst.Close()
	for {
		frame, err := wire.ReadRawFrame(src)
		if err != nil {
			return
		}
		drop, corrupt, delay := p.roll(frame)
		if drop {
			atomic.AddInt64(&p.stats.Dropped, 1)
			continue
		}
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-p.done:
				return
			}
		}
		if corrupt {
			atomic.AddInt64(&p.stats.Corrupted, 1)
		}
		atomic.AddInt64(&p.stats.Forwarded, 1)
		if _, err := dst.Write(frame); err != nil {
			return
		}
	}
}

// roll decides one frame's fate and applies corruption in place.
func (p *Proxy) roll(frame []byte) (drop, corrupt bool, delay time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	u := p.rng.Float64()
	switch {
	case u < p.cfg.DropProb:
		return true, false, 0
	case u < p.cfg.DropProb+p.cfg.CorruptProb:
		p.corrupt(frame)
		corrupt = true
	}
	if p.cfg.MaxDelay > 0 {
		delay = time.Duration(p.rng.Float64() * float64(p.cfg.MaxDelay))
	}
	return false, corrupt, delay
}

// corrupt flips 1–3 bytes inside the payload region (or the CRC for an
// empty payload), never the magic or length fields: the receiver must
// detect the damage via the CRC, not lose stream framing.
func (p *Proxy) corrupt(frame []byte) {
	lo := wire.HeaderLen
	hi := len(frame) - wire.TrailerLen
	if hi <= lo {
		// No payload; flip a CRC byte instead — same end result, the
		// receiver's checksum fails and the frame is discarded.
		lo, hi = len(frame)-wire.TrailerLen, len(frame)
	}
	flips := 1 + p.rng.Intn(3)
	for i := 0; i < flips; i++ {
		frame[lo+p.rng.Intn(hi-lo)] ^= byte(1 + p.rng.Intn(255))
	}
}
