package netsim_test

import (
	"errors"
	"net"
	"testing"
	"time"

	"insitu/internal/netsim"
	"insitu/internal/wire"
)

// echoBackend accepts one connection and echoes every intact frame
// back; CRC-failed frames are skipped like a real endpoint would.
func echoBackend(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			v, mt, payload, err := wire.ReadFrame(conn)
			if err != nil {
				if errors.Is(err, wire.ErrCRC) {
					continue
				}
				return
			}
			if err := wire.WriteFrame(conn, v, mt, payload); err != nil {
				return
			}
		}
	}()
	return ln
}

func startProxy(t *testing.T, target string, cfg netsim.ProxyConfig) *netsim.Proxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("proxy listen: %v", err)
	}
	p := netsim.NewProxy(ln, target, cfg)
	t.Cleanup(p.Close)
	return p
}

func TestProxyForwardsCleanFrames(t *testing.T) {
	backend := echoBackend(t)
	defer backend.Close()
	p := startProxy(t, backend.Addr().String(), netsim.ProxyConfig{Seed: 1})

	conn, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	defer conn.Close()
	for i := 0; i < 10; i++ {
		payload := []byte{byte(i), 0xAB, 0xCD}
		if err := wire.WriteFrame(conn, wire.ProtoMax, wire.MsgCapture, payload); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		_, mt, got, err := wire.ReadFrame(conn)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if mt != wire.MsgCapture || string(got) != string(payload) {
			t.Fatalf("frame %d came back as %v %x", i, mt, got)
		}
	}
	st := p.Stats()
	// 10 frames each way.
	if st.Forwarded != 20 || st.Dropped != 0 || st.Corrupted != 0 {
		t.Fatalf("stats = %+v, want 20 forwarded and no faults", st)
	}
}

func TestProxyCorruptionIsCaughtByCRC(t *testing.T) {
	backend := echoBackend(t)
	defer backend.Close()
	// Corrupt everything: the echo backend should never see an intact
	// frame, so nothing comes back; every receipt fails its CRC.
	p := startProxy(t, backend.Addr().String(), netsim.ProxyConfig{Seed: 2, CorruptProb: 1})

	conn, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.ProtoMax, wire.MsgCapture, []byte("payload")); err != nil {
		t.Fatalf("write: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	_, _, _, err = wire.ReadFrame(conn)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("read after corruption = %v, want timeout (backend discarded the frame)", err)
	}
	if st := p.Stats(); st.Corrupted < 1 {
		t.Fatalf("stats = %+v, want at least one corrupted frame", st)
	}
}

func TestProxyDropsFrames(t *testing.T) {
	backend := echoBackend(t)
	defer backend.Close()
	p := startProxy(t, backend.Addr().String(), netsim.ProxyConfig{Seed: 3, DropProb: 1})

	conn, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	defer conn.Close()
	if err := wire.WriteFrame(conn, wire.ProtoMax, wire.MsgDeploy, []byte("gone")); err != nil {
		t.Fatalf("write: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	if _, _, _, err := wire.ReadFrame(conn); err == nil {
		t.Fatal("frame survived a DropProb=1 proxy")
	}
	if st := p.Stats(); st.Dropped != 1 || st.Forwarded != 0 {
		t.Fatalf("stats = %+v, want exactly one drop", st)
	}
}

func TestProxyEmptyPayloadCorruptionStaysFramed(t *testing.T) {
	backend := echoBackend(t)
	defer backend.Close()
	p := startProxy(t, backend.Addr().String(), netsim.ProxyConfig{Seed: 4, CorruptProb: 1})

	conn, err := net.Dial("tcp", p.Addr().String())
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	defer conn.Close()
	// Empty payload: corruption must hit the CRC, not the framing
	// fields, so the backend survives (skips the frame) rather than
	// desynchronizing.
	if err := wire.WriteFrame(conn, wire.ProtoMax, wire.MsgBye, nil); err != nil {
		t.Fatalf("write: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	_, _, _, err = wire.ReadFrame(conn)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("read = %v, want timeout (backend skipped the corrupt frame and kept the stream)", err)
	}
}
