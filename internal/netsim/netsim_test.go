package netsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTransferTimeAndEnergy(t *testing.T) {
	u := Uplink{Name: "test", BandwidthBps: 1e6, EnergyPerByte: 2e-6}
	if got := u.TransferTime(2e6); math.Abs(got-2) > 1e-9 {
		t.Fatalf("TransferTime = %v, want 2s", got)
	}
	if got := u.TransferEnergy(1e6); math.Abs(got-2) > 1e-9 {
		t.Fatalf("TransferEnergy = %v, want 2J", got)
	}
}

func TestStandardLinks(t *testing.T) {
	w, l := WiFi(), LTE()
	if w.BandwidthBps <= l.BandwidthBps {
		t.Fatal("WiFi should be faster than LTE")
	}
	if w.EnergyPerByte >= l.EnergyPerByte {
		t.Fatal("LTE should cost more energy per byte")
	}
}

func TestMeterAccumulates(t *testing.T) {
	m := NewMeter(WiFi())
	m.Upload(1000)
	m.UploadItems(4000, 3)
	if m.Bytes != 5000 {
		t.Fatalf("Bytes = %d", m.Bytes)
	}
	if m.Items != 4 {
		t.Fatalf("Items = %d", m.Items)
	}
	if m.Joules <= 0 || m.Seconds <= 0 {
		t.Fatal("no energy/time accumulated")
	}
	m.Reset()
	if m.Bytes != 0 || m.Items != 0 || m.Seconds != 0 || m.Joules != 0 {
		t.Fatal("Reset incomplete")
	}
	if m.Link.Name != "WiFi" {
		t.Fatal("Reset dropped the link")
	}
}

func TestMeterRejectsNegative(t *testing.T) {
	m := NewMeter(WiFi())
	defer func() {
		if recover() == nil {
			t.Fatal("negative upload accepted")
		}
	}()
	m.Upload(-1)
}

// Property: meters are additive — uploading in two parts equals one
// combined upload.
func TestQuickMeterAdditive(t *testing.T) {
	f := func(a, b uint32) bool {
		m1 := NewMeter(WiFi())
		m1.Upload(int64(a))
		m1.Upload(int64(b))
		m2 := NewMeter(WiFi())
		m2.Upload(int64(a) + int64(b))
		return m1.Bytes == m2.Bytes &&
			math.Abs(m1.Joules-m2.Joules) < 1e-9 &&
			math.Abs(m1.Seconds-m2.Seconds) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
