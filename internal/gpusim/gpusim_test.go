package gpusim

import (
	"math"
	"testing"
	"testing/quick"

	"insitu/internal/device"
	"insitu/internal/models"
)

func sim() *Sim { return New(device.TX1()) }

func TestGridSizeGrowsWithBatch(t *testing.T) {
	s := sim()
	l, _ := models.AlexNet().Layer("conv3")
	g1 := s.GridSize(l, 1)
	g8 := s.GridSize(l, 8)
	if g8 <= g1 {
		t.Fatalf("grid did not grow with batch: %d vs %d", g1, g8)
	}
	// Eq. (2) exactly: ceil(M/m)·ceil(RC·B/n).
	want := ((l.M + 15) / 16) * ((l.R*l.C*1 + 63) / 64)
	if g1 != want {
		t.Fatalf("grid = %d, want %d", g1, want)
	}
}

func TestUtilizationBounds(t *testing.T) {
	s := sim()
	for _, l := range models.AlexNet().Layers {
		for _, b := range []int{1, 2, 4, 16, 64} {
			u := s.Utilization(l, b)
			if u <= 0 || u > 1 {
				t.Fatalf("util(%s, %d) = %v", l.Name, b, u)
			}
		}
	}
}

func TestUtilizationTrendsUpWithBatch(t *testing.T) {
	// The Fig. 15 claim: GPU utilization at batch 64 clearly exceeds
	// batch-1 utilization for the whole network (weighted by ops).
	s := sim()
	avgUtil := func(batch int) float64 {
		var num, den float64
		for _, l := range models.AlexNet().Layers {
			ops := float64(l.Ops())
			num += s.Utilization(l, batch) * ops
			den += ops
		}
		return num / den
	}
	if u1, u64 := avgUtil(1), avgUtil(64); u64 <= u1 {
		t.Fatalf("utilization not improved by batching: %v -> %v", u1, u64)
	}
}

func TestCTMGrowsWithBatchForFCN(t *testing.T) {
	fc := models.FCSpec("fc6", 9216, 4096)
	c1 := CTM(fc, 1)
	c32 := CTM(fc, 32)
	if c32 <= c1*8 {
		t.Fatalf("FCN CTM should grow ~linearly with batch: %v -> %v", c1, c32)
	}
	// At batch 1, an FC layer re-reads all weights for a single vector:
	// CTM ≈ 2 ops per weight element.
	if c1 < 1 || c1 > 3 {
		t.Fatalf("batch-1 FCN CTM = %v, want ≈2", c1)
	}
}

func TestFCNMemoryBoundAtSmallBatch(t *testing.T) {
	s := sim()
	fc := models.FCSpec("fc6", 9216, 4096)
	r1 := s.LayerTime(fc, 1)
	if !r1.MemoryBound {
		t.Fatal("batch-1 FCN should be memory-bound on TX1")
	}
	r128 := s.LayerTime(fc, 128)
	if r128.AchievedOPS <= r1.AchievedOPS {
		t.Fatalf("batching did not improve achieved FCN ops: %v -> %v", r1.AchievedOPS, r128.AchievedOPS)
	}
}

func TestConvComputeBound(t *testing.T) {
	s := sim()
	conv, _ := models.AlexNet().Layer("conv2")
	if r := s.LayerTime(conv, 4); r.MemoryBound {
		t.Fatal("conv2 should be compute-bound on TX1")
	}
}

func TestLatencyGrowsWithBatch(t *testing.T) {
	// Fig. 11: batch latency rises with batch size.
	s := sim()
	spec := models.AlexNet()
	prev := 0.0
	for _, b := range []int{1, 2, 4, 8, 16, 32} {
		lat := s.NetTime(spec, b).Latency()
		if lat <= prev {
			t.Fatalf("latency not increasing at batch %d: %v <= %v", b, lat, prev)
		}
		prev = lat
	}
}

func TestPerfPerWattImprovesWithBatch(t *testing.T) {
	// Fig. 11: GPU energy-efficiency improves with batch size.
	s := sim()
	spec := models.AlexNet()
	p1 := s.PerfPerWatt(spec, 1)
	p32 := s.PerfPerWatt(spec, 32)
	if p32 <= p1 {
		t.Fatalf("perf/W did not improve: %v -> %v", p1, p32)
	}
}

func TestAlexNetBatch1LatencyPlausible(t *testing.T) {
	// TX1 measurements put AlexNet batch-1 inference in the tens of
	// milliseconds. The model should land in [5ms, 100ms].
	s := sim()
	lat := s.NetTime(models.AlexNet(), 1).Latency()
	if lat < 5e-3 || lat > 100e-3 {
		t.Fatalf("AlexNet batch-1 latency = %v s, implausible for TX1", lat)
	}
}

func TestFCNShareMatchesFig12(t *testing.T) {
	// Fig. 12: FCN layers account for up to ~50% of runtime at small
	// batches, and their share falls as batch grows.
	s := sim()
	spec := models.AlexNet()
	small := s.NetTime(spec, 1).FCNShare()
	large := s.NetTime(spec, 64).FCNShare()
	if small < 0.25 {
		t.Fatalf("batch-1 FCN share = %v, want substantial (~0.5)", small)
	}
	if large >= small {
		t.Fatalf("FCN share should fall with batch: %v -> %v", small, large)
	}
}

func TestMemoryUseAndEq9(t *testing.T) {
	s := sim()
	spec := models.AlexNet()
	if !s.FitsMemory(spec, 1) {
		t.Fatal("batch 1 must fit TX1 memory")
	}
	m1 := MemoryUse(spec, 1)
	m64 := MemoryUse(spec, 64)
	if m64 <= m1 {
		t.Fatal("memory use must grow with batch")
	}
	maxB := s.MaxBatchForMemory(spec, 4096)
	if maxB < 1 {
		t.Fatal("no feasible batch")
	}
	if s.FitsMemory(spec, maxB+1) && maxB != 4096 {
		t.Fatalf("MaxBatchForMemory(%d) not maximal", maxB)
	}
}

func TestEnergyPerImageFallsWithBatch(t *testing.T) {
	s := sim()
	spec := models.AlexNet()
	e1 := s.EnergyPerImage(spec, 1)
	e32 := s.EnergyPerImage(spec, 32)
	if e32 >= e1 {
		t.Fatalf("energy/image should fall with batch: %v -> %v", e1, e32)
	}
}

func TestCoRunSlowdownShape(t *testing.T) {
	m := DefaultInterference()
	if m.CoRunSlowdown(0) != 1 {
		t.Fatal("no load must mean no slowdown")
	}
	if s := m.CoRunSlowdown(1); s < 1.5 || s > 2.5 {
		t.Fatalf("equal-load slowdown = %v, want ~1.85×", s)
	}
	if m.CoRunSlowdown(2) <= m.CoRunSlowdown(1) {
		t.Fatal("slowdown must grow with load")
	}
}

func TestFig16InterferenceUpTo3x(t *testing.T) {
	// The paper measures up to 3× inference slowdown from co-running
	// diagnosis on the GPU (AlexNet + its 9-patch diagnosis network).
	s := sim()
	inf := models.AlexNet()
	diag := models.DiagnosisSpec(inf, 100)
	m := DefaultInterference()
	solo := s.NetTime(inf, 1).TotalTime()
	co := s.CoRunInferenceLatency(inf, diag, 1, m)
	factor := co / solo
	if factor < 2 || factor > 4 {
		t.Fatalf("co-run slowdown = %vx, want ~3x", factor)
	}
}

func TestDiagnosisLoadPositive(t *testing.T) {
	inf := models.AlexNet()
	diag := models.DiagnosisSpec(inf, 100)
	load := DiagnosisLoad(inf, diag)
	if load <= 0.5 || load > 5 {
		t.Fatalf("diagnosis load = %v, implausible", load)
	}
}

// Property: eq. (6) — the achieved performance never exceeds either roof.
func TestQuickRooflineNeverExceeded(t *testing.T) {
	s := sim()
	layers := models.AlexNet().Layers
	f := func(li, batch uint8) bool {
		l := layers[int(li)%len(layers)]
		b := 1 + int(batch)%128
		r := s.LayerTime(l, b)
		computeRoof := s.Spec.MaxOPS() * r.Utilization
		bwRoof := CTM(l, b) * s.Spec.MemBandwidth / 4
		return r.AchievedOPS <= computeRoof+1 && r.AchievedOPS <= bwRoof+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: batch latency is monotone non-decreasing in batch size for
// every layer.
func TestQuickLatencyMonotone(t *testing.T) {
	s := sim()
	layers := models.AlexNet().Layers
	f := func(li, batch uint8) bool {
		l := layers[int(li)%len(layers)]
		b := 1 + int(batch)%64
		return s.LayerTime(l, b+1).Time >= s.LayerTime(l, b).Time-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceSpecs(t *testing.T) {
	tx1 := device.TX1()
	if ops := tx1.MaxOPS(); math.Abs(ops-511e9)/511e9 > 0.05 {
		t.Fatalf("TX1 maxOPS = %v, want ~511 GFLOPS", ops)
	}
	titan := device.TitanX()
	if titan.MaxOPS() <= 10*tx1.MaxOPS() {
		t.Fatal("TitanX should be >10x TX1")
	}
	fpga := device.VX690T()
	if fpga.PeakOPS() < 1e12 || fpga.PeakOPS() > 2e12 {
		t.Fatalf("VX690T peak = %v, want ~1.44 TOPS", fpga.PeakOPS())
	}
}
