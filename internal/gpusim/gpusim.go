// Package gpusim is the analytical mobile-GPU model of the paper's
// Single-running mode (§IV-A, §IV-B1): matrix-multiplication-based CONV
// and FCN layers whose runtime follows the grid-size utilization model of
// eqs. (2)–(3) and the roofline time model of eqs. (5)–(8), plus the
// co-running interference behaviour of Fig. 16. It replaces measurements
// on a physical NVIDIA TX1.
package gpusim

import (
	"fmt"
	"math"

	"insitu/internal/device"
	"insitu/internal/models"
)

// Sim evaluates the analytical GPU model for a given device spec.
type Sim struct {
	Spec device.GPUSpec
	// TileM×TileN is the output sub-matrix computed by one thread block
	// (Volkov & Demmel-style blocking); eq. (2) divides the output matrix
	// into these tiles.
	TileM, TileN int
	// Overhead is the fixed per-layer kernel launch + im2col overhead in
	// seconds. It keeps tiny layers from reporting implausible zero
	// latencies.
	Overhead float64
}

// New returns a simulator with the validated default blocking (16×64
// tiles, 20 µs per-layer overhead).
func New(spec device.GPUSpec) *Sim {
	return &Sim{Spec: spec, TileM: 16, TileN: 64, Overhead: 20e-6}
}

// GridSize implements eq. (2) for a layer at the given batch size: the
// output matrix Om is M × (R·C·B); thread blocks tile it m×n.
func (s *Sim) GridSize(l models.LayerSpec, batch int) int {
	cols := l.R * l.C * batch
	return ceilDiv(l.M, s.TileM) * ceilDiv(cols, s.TileN)
}

// Utilization implements eq. (3): Gridsize / (maxBlocks · ⌈Gridsize/maxBlocks⌉).
// It rises toward 1 as the grid grows — the reason batching helps GPU
// energy-efficiency (Fig. 15).
func (s *Sim) Utilization(l models.LayerSpec, batch int) float64 {
	grid := s.GridSize(l, batch)
	mb := s.Spec.MaxBlocks
	return float64(grid) / (float64(mb) * float64(ceilDiv(grid, mb)))
}

// CTM implements eq. (8): computational operations per element accessed,
// 2·M·N·K²·R·C·B / (Din + Dw + Dout) with Din = N·K²·R·C·B,
// Dw = M·N·K², Dout = M·R·C·B.
func CTM(l models.LayerSpec, batch int) float64 {
	b := int64(batch)
	ops := l.Ops() * b
	din := l.InputElems() * b
	dw := int64(l.M) * int64(l.N) * int64(l.K) * int64(l.K)
	dout := l.OutputElems() * b
	return float64(ops) / float64(din+dw+dout)
}

// LayerResult is the model's verdict for one layer at one batch size.
type LayerResult struct {
	Layer models.LayerSpec
	Batch int
	// Time is the layer latency in seconds for the whole batch.
	Time float64
	// Utilization is eq. (3).
	Utilization float64
	// AchievedOPS is eq. (6): min(compute roof × util, CTM × MBW).
	AchievedOPS float64
	// MemoryBound reports whether the bandwidth term limited the layer.
	MemoryBound bool
}

// LayerTime evaluates eqs. (5)–(8) for one layer.
func (s *Sim) LayerTime(l models.LayerSpec, batch int) LayerResult {
	if batch < 1 {
		panic(fmt.Sprintf("gpusim: batch %d", batch))
	}
	util := s.Utilization(l, batch)
	computeRoof := s.Spec.MaxOPS() * util
	// MBW is in bytes/s; CTM counts float32 elements, so divide by 4.
	bwRoof := CTM(l, batch) * s.Spec.MemBandwidth / 4
	achieved := math.Min(computeRoof, bwRoof)
	ops := float64(l.Ops()) * float64(batch)
	return LayerResult{
		Layer:       l,
		Batch:       batch,
		Time:        ops/achieved + s.Overhead,
		Utilization: util,
		AchievedOPS: achieved,
		MemoryBound: bwRoof < computeRoof,
	}
}

// NetResult aggregates a whole-network evaluation.
type NetResult struct {
	Net   models.NetSpec
	Batch int
	// ConvTime and FCNTime split the batch latency by layer family —
	// the runtime breakdown of Fig. 12.
	ConvTime float64
	FCNTime  float64
	// Layers holds the per-layer results in order.
	Layers []LayerResult
}

// TotalTime returns the whole-batch latency.
func (r NetResult) TotalTime() float64 { return r.ConvTime + r.FCNTime }

// Latency returns the per-image latency (batch latency: all images in a
// batch complete together, so the user-visible response time is the full
// batch time).
func (r NetResult) Latency() float64 { return r.TotalTime() }

// Throughput returns images/s at this batch size.
func (r NetResult) Throughput() float64 { return float64(r.Batch) / r.TotalTime() }

// FCNShare returns FCN time as a fraction of total (Fig. 12's y-axis).
func (r NetResult) FCNShare() float64 { return r.FCNTime / r.TotalTime() }

// NetTime evaluates every layer of a network at the given batch size.
func (s *Sim) NetTime(spec models.NetSpec, batch int) NetResult {
	res := NetResult{Net: spec, Batch: batch}
	for _, l := range spec.Layers {
		lr := s.LayerTime(l, batch)
		res.Layers = append(res.Layers, lr)
		if l.Kind == models.Conv {
			res.ConvTime += lr.Time
		} else {
			res.FCNTime += lr.Time
		}
	}
	return res
}

// PerfPerWatt returns images per second per watt at the given batch —
// the energy-efficiency metric of Figs. 11 and 14.
func (s *Sim) PerfPerWatt(spec models.NetSpec, batch int) float64 {
	return s.NetTime(spec, batch).Throughput() / s.Spec.PowerW
}

// EnergyPerImage returns joules per processed image.
func (s *Sim) EnergyPerImage(spec models.NetSpec, batch int) float64 {
	r := s.NetTime(spec, batch)
	return s.Spec.PowerW * r.TotalTime() / float64(batch)
}

// MemoryUse returns the bytes of device memory a batch needs:
// max over layers of (Din + Dw + Dout) × 4 bytes — the left side of the
// resource model, eq. (9).
func MemoryUse(spec models.NetSpec, batch int) int64 {
	var peak int64
	b := int64(batch)
	for _, l := range spec.Layers {
		din := l.InputElems() * b
		dw := int64(l.M) * int64(l.N) * int64(l.K) * int64(l.K)
		dout := l.OutputElems() * b
		if t := 4 * (din + dw + dout); t > peak {
			peak = t
		}
	}
	return peak
}

// FitsMemory implements eq. (9): whether the batch fits device memory.
func (s *Sim) FitsMemory(spec models.NetSpec, batch int) bool {
	return MemoryUse(spec, batch) <= s.Spec.MemCapacity
}

// MaxBatchForMemory returns the largest power-of-two-free batch size that
// satisfies eq. (9); it is the diagnosis task's configuration bound in
// Single-running mode.
func (s *Sim) MaxBatchForMemory(spec models.NetSpec, limit int) int {
	best := 0
	for b := 1; b <= limit; b++ {
		if s.FitsMemory(spec, b) {
			best = b
		}
	}
	return best
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
