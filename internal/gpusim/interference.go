package gpusim

import "insitu/internal/models"

// Co-running interference model (paper Fig. 16): when the diagnosis task
// shares the GPU with the inference task, kernels from both tasks
// time-slice the device and evict each other's cache/memory-controller
// state. The paper measures inference slowdowns up to 3×.
//
// The model: the diagnosis task presents a continuous background load
// expressed as its demanded fraction of device throughput. Inference
// kernels then receive a 1/(1+load) share of the device, plus a
// contention penalty for scheduler churn and cache interference that
// grows with the background load.

// InterferenceModel captures the co-running slowdown parameters.
type InterferenceModel struct {
	// ContentionFactor converts background load into inference slowdown:
	// slowdown = 1 + ContentionFactor × load. The default 0.85 calibrates
	// the AlexNet inference + 9-patch diagnosis pair (load ≈ 2.3) to the
	// paper's ~3× worst case.
	ContentionFactor float64
}

// DefaultInterference returns the calibrated model.
func DefaultInterference() InterferenceModel { return InterferenceModel{ContentionFactor: 0.85} }

// DiagnosisLoad returns the background load the diagnosis task places on
// the device: the ratio of diagnosis work rate to inference work rate
// when both run continuously. The diagnosis task processes 9 patches per
// image through the shared CONV stack (at quarter spatial size) plus its
// FCN head.
func DiagnosisLoad(inference, diagnosis models.NetSpec) float64 {
	infOps := float64(inference.TotalOps())
	var diagOps float64
	for _, l := range diagnosis.Layers {
		if l.Kind == models.Conv {
			diagOps += 9 * float64(l.Ops())
		} else {
			diagOps += float64(l.Ops())
		}
	}
	return diagOps / infOps
}

// CoRunSlowdown returns the multiplicative latency factor the inference
// task suffers when a background diagnosis load co-runs: fair-share loss
// plus contention penalty.
func (m InterferenceModel) CoRunSlowdown(load float64) float64 {
	if load <= 0 {
		return 1
	}
	return 1 + m.ContentionFactor*load
}

// CoRunInferenceLatency evaluates the inference batch latency with the
// diagnosis task co-running.
func (s *Sim) CoRunInferenceLatency(inference, diagnosis models.NetSpec, batch int, m InterferenceModel) float64 {
	solo := s.NetTime(inference, batch).TotalTime()
	return solo * m.CoRunSlowdown(DiagnosisLoad(inference, diagnosis))
}
