// Smart farming: Single-running mode as a live day/night node.
//
// A crop-monitoring node only needs inference while the farm operates;
// at night the same mobile GPU runs the diagnosis task over the day's
// captures (the paper's Single-running working mode). This example runs
// the event-driven node runtime for one day/night cycle, comparing the
// naive non-batching deployment against the time-model-planned one —
// same frames, same deadlines, different energy.
//
//	go run ./examples/smartfarm
package main

import (
	"fmt"

	"insitu/internal/device"
	"insitu/internal/gpusim"
	"insitu/internal/models"
	"insitu/internal/node"
)

func main() {
	inf := models.AlexNet()
	cfg := node.Config{
		Sim:          gpusim.New(device.TX1()),
		Inference:    inf,
		Diagnosis:    models.DiagnosisSpec(inf, 100),
		FrameRate:    60,   // two 30 FPS field cameras
		LatencyReq:   0.25, // alerts within 250 ms
		DaySeconds:   600,  // 10-minute slice of the working day
		NightSeconds: 600,
	}

	fmt.Println("smart-farm node, one day/night cycle (10 min day, 10 min night):")
	fmt.Println()
	fmt.Printf("%-22s %8s %8s %9s %10s %10s %9s\n",
		"deployment", "batch", "misses", "avg lat", "GPU busy", "energy", "backlog")
	run := func(name string, batch int) node.Report {
		c := cfg
		c.InferenceBatch = batch
		r := node.Run(c)
		fmt.Printf("%-22s %8d %8d %8.0fms %9.1fs %9.0fJ %9d\n",
			name, r.InferenceBatchN, r.DeadlineMisses, r.AvgLatency*1e3,
			r.InferenceBusy+r.DiagnosisBusy, r.EnergyJ, r.Backlog)
		return r
	}
	naive := run("non-batching", 1)
	planned := run("time-model planned", 0)

	saved := 1 - planned.EnergyJ/naive.EnergyJ
	fmt.Printf("\nthe planned configuration serves the same %d frames with %.0f%% less energy\n",
		planned.Frames, saved*100)
	fmt.Printf("night window diagnosed %d captures (batch %d via the eq. 9 resource model)\n",
		planned.DiagnosedFrames, planned.DiagnosisBatchN)
}
