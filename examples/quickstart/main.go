// Quickstart: the In-situ AI loop in one file.
//
// It builds a synthetic IoT world, pre-trains the unsupervised jigsaw
// network on unlabeled data, transfer-learns an inference network from
// it, deploys both to a node as inference + diagnosis tasks, and shows
// the node filtering a fresh capture so that only valuable (unrecognized)
// images would move to the Cloud.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"insitu/internal/dataset"
	"insitu/internal/diagnosis"
	"insitu/internal/jigsaw"
	"insitu/internal/models"
	"insitu/internal/tensor"
	"insitu/internal/train"
	"insitu/internal/transfer"
)

func main() {
	const (
		classes = 5
		perms   = 8
		seed    = 42
	)
	world := dataset.NewGenerator(classes, seed)

	// 1. Unsupervised pre-training on big raw (unlabeled) IoT data.
	fmt.Println("1) unsupervised jigsaw pre-training on 192 unlabeled images...")
	permSet := jigsaw.NewPermSet(perms, seed+1)
	jigNet := jigsaw.NewNet(perms, seed+2)
	trainer := jigsaw.NewTrainer(jigNet, permSet, 0.01, seed+3)
	pool := world.MixedSet(192, 0.5, 0.6)
	images := make([]*tensor.Tensor, len(pool))
	for i := range pool {
		images[i] = pool[i].Image
	}
	for step := 0; step < 120; step++ {
		i0 := (step * 16) % len(images)
		trainer.Step(images[i0 : i0+16])
	}
	fmt.Printf("   jigsaw task accuracy: %.2f (chance %.2f)\n",
		trainer.Evaluate(images[:64]), 1.0/perms)

	// 2. Transfer learning: copy the shared CONV trunk, fine-tune on a
	// small labeled set.
	fmt.Println("2) transfer learning into the inference network (48 labels)...")
	inference := models.TinyAlex(classes, seed+4)
	if _, err := transfer.FromUnsupervised(inference, jigNet, 3); err != nil {
		panic(err)
	}
	labeled := world.MixedSet(48, 0.5, 0.6)
	train.Run(inference, labeled, train.DefaultConfig(60), 0)
	test := world.MixedSet(200, 0.5, 0.6)
	fmt.Printf("   inference accuracy: %.2f\n", train.Evaluate(inference, test))

	// 3. Deploy the diagnosis task on the node and filter a capture.
	fmt.Println("3) node-side diagnosis on a fresh capture of 100 images...")
	diag := diagnosis.NewJigsawDiagnoser(jigNet, permSet, 3, seed+5)
	diagnosis.Calibrate(diag, labeled, 0.4)
	capture := world.MixedSet(100, 0.5, 0.6)
	recognized, unrecognized := diagnosis.Split(diag, capture)
	fmt.Printf("   recognized locally: %d, uploaded to Cloud: %d (%.0f%% data movement saved)\n",
		len(recognized), len(unrecognized),
		100*(1-float64(len(unrecognized))/float64(len(capture))))
	q := diagnosis.Measure(diag, inference, capture)
	fmt.Printf("   diagnosis vs ground truth: recall %.2f, precision %.2f\n",
		q.ErrorRecall, q.Precision)
}
