// Single-running mode planning: the analytical time and resource models.
//
// A smart-farming node only needs inference during the day, so the
// diagnosis task runs at night on the same mobile GPU (Single-running
// mode). This example walks the paper's §IV-B1 models: the time model
// picks the inference batch for several end-user latency requirements,
// the resource model (eq. 9) bounds the diagnosis batch by device
// memory, and both are checked against the brute-force oracle.
//
//	go run ./examples/planner
package main

import (
	"fmt"

	"insitu/internal/device"
	"insitu/internal/gpusim"
	"insitu/internal/models"
	"insitu/internal/planner"
)

func main() {
	sim := gpusim.New(device.TX1())
	inf := models.AlexNet()
	diag := models.DiagnosisSpec(inf, 100)

	rec := planner.RecommendMode(false)
	fmt.Printf("mode recommendation: %s — %s\n\n", rec.Platform, rec.Reason)

	fmt.Println("time model: optimal inference batch per latency requirement")
	fmt.Println("req (ms)   batch  latency (ms)  img/s   img/s/W  speedup-vs-B1  oracle")
	for _, treq := range []float64{0.033, 0.05, 0.1, 0.2, 0.5, 1.0} {
		plan := planner.PlanSingleRunning(sim, inf, diag, treq, 256)
		if !plan.InferenceFeasible {
			fmt.Printf("%8.0f   cannot meet the requirement\n", treq*1e3)
			continue
		}
		b := plan.InferenceBatch
		res := sim.NetTime(inf, b)
		oracle, _ := planner.BruteForceBest(sim, inf, treq, 256)
		fmt.Printf("%8.0f   %5d  %12.1f  %6.1f  %7.2f  %12.2fx  B=%d\n",
			treq*1e3, b, res.Latency()*1e3, res.Throughput(),
			sim.PerfPerWatt(inf, b),
			planner.SpeedupOverNonBatch(sim, inf, treq, 256), oracle)
	}

	// Resource model for the overnight diagnosis task.
	plan := planner.PlanSingleRunning(sim, inf, diag, 0.1, 4096)
	fmt.Printf("\nresource model (eq. 9): diagnosis batch bounded by %d MB memory -> B=%d\n",
		device.TX1().MemCapacity>>20, plan.DiagnosisBatch)
	fmt.Printf("memory at that batch: %.0f MB\n",
		float64(gpusim.MemoryUse(diag, plan.DiagnosisBatch))/1e6)
}
