// Video surveillance: Co-running mode on the FPGA.
//
// A 24/7 surveillance camera cannot pause its inference task, so the
// diagnosis task must co-run (paper §IV). This example sizes the
// two-level weight-shared WSS+NWS pipeline for a 20 FPS camera (50 ms
// latency requirement — the FCN weight-streaming floor makes 30 FPS
// infeasible on this board, exactly where the paper's Fig. 23 sweep
// starts), compares it with the NWS/WS baselines, and shows
// the eq. (14) configuration search in action.
//
//	go run ./examples/surveillance
package main

import (
	"fmt"

	"insitu/internal/device"
	"insitu/internal/fpgasim"
	"insitu/internal/gpusim"
	"insitu/internal/models"
	"insitu/internal/planner"
)

func main() {
	// Why not the GPU? The paper's Fig. 16: co-running interference.
	rec := planner.RecommendMode(true)
	fmt.Printf("mode recommendation for a 24/7 camera: %s — %s\n\n", rec.Platform, rec.Reason)

	g := gpusim.New(device.TX1())
	inf := models.AlexNet()
	diag := models.DiagnosisSpec(inf, 100)
	solo := g.NetTime(inf, 1).TotalTime()
	co := g.CoRunInferenceLatency(inf, diag, 1, gpusim.DefaultInterference())
	fmt.Printf("GPU co-running check: %.1f ms solo -> %.1f ms co-running (%.1fx slowdown)\n\n",
		solo*1e3, co*1e3, co/solo)

	// Size the FPGA pipeline for 20 FPS.
	spec := device.VX690T()
	w := fpgasim.NewCoRunWorkload(inf)
	const requirement = 0.05 // 50 ms for 20 FPS
	fmt.Printf("FPGA pipeline plans under a %.1f ms requirement (%d DSP slices):\n",
		requirement*1e3, spec.DSPSlices)
	for _, arch := range []fpgasim.ConvArch{
		fpgasim.ArchNWS, fpgasim.ArchNWSBatch, fpgasim.ArchWS, fpgasim.ArchWSSNWS,
	} {
		p, err := fpgasim.NewPipeline(spec, arch, w, 3)
		if err != nil {
			panic(err)
		}
		plan := p.MaxThroughputUnderLatency(requirement, 256)
		if plan.Feasible {
			fmt.Printf("  %-9s  B=%-3d  %.1f img/s at %.1f ms\n",
				arch, plan.Bsize, plan.Throughput, plan.Latency*1e3)
		} else {
			fmt.Printf("  %-9s  cannot meet the requirement\n", arch)
		}
	}

	// The deployed configuration.
	plan, err := planner.PlanCoRunning(spec, w, 3, requirement)
	if err != nil {
		panic(err)
	}
	if !plan.Result.Feasible {
		fmt.Println("\nno feasible co-running configuration — fall back to Single-running mode")
		return
	}
	fmt.Printf("\ndeploying %s with FCN batch %d: every frame gets inference AND diagnosis\n",
		plan.Arch, plan.Result.Bsize)
	fmt.Printf("sustained: %.0f img/s — the camera needs 20, leaving headroom for %d extra sensors\n",
		plan.Result.Throughput, int(plan.Result.Throughput/20)-1)
}
