// Wildlife monitoring: the paper's motivating scenario end to end.
//
// A camera-trap node in a wildlife sanctuary (the Snapshot-Serengeti
// setting) runs the full In-situ AI closed loop across four incremental
// update stages: animals appear too close to the camera, in random poses
// and under poor illumination, the node's diagnosis task uploads only the
// unrecognized captures, and the Cloud incrementally updates both models
// with two-level weight sharing.
//
//	go run ./examples/wildlife
package main

import (
	"fmt"

	"insitu/internal/core"
	"insitu/internal/netsim"
)

func main() {
	cfg := core.DefaultConfig(core.SystemInSituAI, 2026)
	cfg.Classes = 5         // species in this sanctuary
	cfg.InSituFrac = 0.6    // most captures are messy
	cfg.Severity = 0.7      // strong condition drift
	cfg.Link = netsim.LTE() // remote site: cellular uplink
	sanctuary := core.NewSystem(cfg)

	fmt.Println("bootstrapping the sanctuary node (all 128 initial captures move to the Cloud)...")
	boot := sanctuary.Bootstrap(128)
	fmt.Printf("  initial model accuracy on live captures: %.2f\n\n", boot.NodeAccuracy)

	fmt.Println("stage  captured  uploaded  frac   accuracy  uplink(J)  cloud(s)")
	fmt.Printf("%5d  %8d  %8d  %.2f   %.3f     %8.3f  %7.2f\n",
		boot.Stage, boot.Captured, boot.Uploaded, boot.UploadFrac,
		boot.NodeAccuracy, boot.UplinkJoules, boot.CloudCost.Seconds)
	for _, n := range []int{96, 128, 192, 256} {
		r := sanctuary.RunStage(n)
		fmt.Printf("%5d  %8d  %8d  %.2f   %.3f     %8.3f  %7.2f\n",
			r.Stage, r.Captured, r.Uploaded, r.UploadFrac,
			r.NodeAccuracy, r.UplinkJoules, r.CloudCost.Seconds)
	}

	m := sanctuary.Meter()
	fmt.Printf("\nuplink lifetime: %d of the captures moved (%.2f MB, %.3f J over %s)\n",
		m.Items, float64(m.Bytes)/1e6, m.Joules, m.Link.Name)
	fmt.Println("the node kept the rest local: that is the In-situ AI data-movement saving.")
}
