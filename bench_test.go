// Package insitu_bench is the benchmark harness of the reproduction: one
// benchmark per table and figure of the paper's evaluation. Each
// benchmark regenerates its artifact (printing the table on first run)
// and reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's evaluation section end to end. The heavyweight
// learning/closed-loop experiments are computed once and cached across
// b.N iterations; the analytic experiments are cheap enough to run per
// iteration.
package insitu_bench

import (
	"fmt"
	"sync"
	"testing"

	"insitu/internal/core"
	"insitu/internal/experiments"
	"insitu/internal/fpgasim"
	"insitu/internal/models"
	"insitu/internal/tensor"
)

var printOnce sync.Map

// printTable prints a rendered table exactly once per benchmark name.
func printTable(name, rendered string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n%s\n", rendered)
	}
}

// ---- Hot path: one SGD step of the reference model. ----

// BenchmarkTrainStep measures the end-to-end cost of a single training
// step on TinyAlex — forward, backward, and optimizer update — which is
// the quantity every in-situ incremental-update experiment ultimately
// pays per sample batch. It exercises the blocked matmul/im2col kernel
// layer and its workspace pools directly.
func BenchmarkTrainStep(b *testing.B) {
	const batch = 8
	net := models.TinyAlex(10, 7)
	rng := tensor.NewRNG(7)
	x := tensor.New(batch, models.ImgChannels, models.ImgSize, models.ImgSize)
	x.FillNormal(rng, 0, 1)
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = i % 10
	}
	net.ZeroGrad()
	net.TrainStep(x, labels) // warm kernel and gradient pools
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrad()
		net.TrainStep(x, labels)
	}
}

// ---- Table I and Figs. 5–7: learning experiments (cached). ----

var (
	tableIOnce sync.Once
	tableIRes  experiments.TableIResult
)

func BenchmarkTableI(b *testing.B) {
	tableIOnce.Do(func() { tableIRes = experiments.TableI(experiments.Paper) })
	printTable("tableI", tableIRes.Table().String())
	for i := 0; i < b.N; i++ {
		_ = tableIRes.Table().String()
	}
	b.ReportMetric(tableIRes.IdealAcc["AlexNet"]*100, "alex-ideal-%")
	b.ReportMetric(tableIRes.InSituAcc["AlexNet"]*100, "alex-insitu-%")
}

var (
	fig5Once sync.Once
	fig5Res  experiments.Fig5Result
)

func BenchmarkFig5(b *testing.B) {
	fig5Once.Do(func() { fig5Res = experiments.Fig5(experiments.Paper) })
	printTable("fig5", fig5Res.Table().String())
	for i := 0; i < b.N; i++ {
		_ = fig5Res.Table().String()
	}
	n := len(fig5Res.Checkpoints)
	b.ReportMetric((fig5Res.StrongPre[n-1]-fig5Res.Scratch[n-1])*100, "transfer-gain-%")
}

var (
	fig6Once sync.Once
	fig6Res  experiments.Fig6Result
)

func BenchmarkFig6(b *testing.B) {
	fig6Once.Do(func() { fig6Res = experiments.Fig6(experiments.Paper) })
	printTable("fig6", fig6Res.Table().String())
	for i := 0; i < b.N; i++ {
		_ = fig6Res.Table().String()
	}
	b.ReportMetric(fig6Res.ModelSpeedup[3], "conv3-speedup-x")
}

var (
	fig7Once sync.Once
	fig7Res  experiments.Fig7Result
)

func BenchmarkFig7(b *testing.B) {
	fig7Once.Do(func() { fig7Res = experiments.Fig7(experiments.Paper) })
	printTable("fig7", fig7Res.Table().String())
	for i := 0; i < b.N; i++ {
		_ = fig7Res.Table().String()
	}
	b.ReportMetric(fig7Res.Accuracy["Net-Err"]*100, "net-err-acc-%")
	b.ReportMetric(fig7Res.Accuracy["Net-all"]*100, "net-all-acc-%")
}

// ---- Figs. 11–23: analytic characterization (cheap, per-iteration). ----

func BenchmarkFig11(b *testing.B) {
	var r experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig11()
	}
	printTable("fig11", r.Table().String())
	b.ReportMetric(r.GPUPerfW[len(r.Batches)-1]/r.GPUPerfW[0], "gpu-ppw-gain-x")
}

func BenchmarkFig12(b *testing.B) {
	var r experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig12()
	}
	printTable("fig12", r.Table().String())
	b.ReportMetric(r.GPUFCN[0]*100, "batch1-fcn-share-%")
}

func BenchmarkFig14(b *testing.B) {
	var r experiments.Fig14Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig14()
	}
	printTable("fig14", r.Table().String())
	n := len(r.Batches)
	b.ReportMetric(r.FPGAFCNOpt[n-1]/r.FPGAFCNRaw[n-1], "batchloop-gain-x")
}

func BenchmarkFig15(b *testing.B) {
	var r experiments.Fig15Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig15()
	}
	printTable("fig15", r.Table().String())
	b.ReportMetric(r.GPUUtil[len(r.Batches)-1], "gpu-util-batch128")
}

func BenchmarkFig16(b *testing.B) {
	var r experiments.Fig16Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig16()
	}
	printTable("fig16", r.Table().String())
	b.ReportMetric(r.Slowdown[0], "corun-slowdown-x")
}

func BenchmarkFig21(b *testing.B) {
	var r experiments.Fig21Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig21()
	}
	printTable("fig21", r.Table().String())
	b.ReportMetric(r.AvgSpeedup["AlexNet"], "alex-speedup-x")
	b.ReportMetric(r.AvgSpeedup["VGGNet"], "vgg-speedup-x")
}

func BenchmarkFig22(b *testing.B) {
	var r experiments.Fig22Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig22()
	}
	printTable("fig22", r.Table().String())
	nws := r.Results[3]["NWS"].Total()
	wss := r.Results[3]["WSS"].Total()
	b.ReportMetric(nws/wss, "wss-vs-nws-x")
}

func BenchmarkFig23(b *testing.B) {
	var r experiments.Fig23Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig23()
	}
	printTable("fig23", r.Table().String())
	b.ReportMetric(r.Plans[fpgasim.ArchWSSNWS][0].Throughput, "wss-nws@50ms-img/s")
}

// ---- Table II and Fig. 25: closed-loop system comparison (cached). ----

var (
	sysOnce sync.Once
	sysCmp  *core.Comparison
)

func systems() *core.Comparison {
	sysOnce.Do(func() { sysCmp = experiments.RunSystems(experiments.PaperSystem) })
	return sysCmp
}

func BenchmarkTableII(b *testing.B) {
	cmp := systems()
	var r experiments.TableIIResult
	for i := 0; i < b.N; i++ {
		r = experiments.TableII(cmp)
	}
	printTable("tableII", r.Table().String())
	b.ReportMetric(r.CD[len(r.CD)-1], "final-cd-ratio")
}

func BenchmarkFig25(b *testing.B) {
	cmp := systems()
	var r experiments.Fig25Result
	for i := 0; i < b.N; i++ {
		r = experiments.Fig25(cmp)
	}
	printTable("fig25", r.Table().String())
	b.ReportMetric(r.DataMovementSaving*100, "data-saving-%")
	b.ReportMetric(r.EnergySaving*100, "energy-saving-%")
	if n := len(r.SpeedupVsA); n > 0 {
		b.ReportMetric(r.SpeedupVsA[n-1], "update-speedup-x")
	}
}

// ---- Ablations. ----

func BenchmarkAblationSplit(b *testing.B) {
	var r experiments.AblationSplitResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationSplit()
	}
	printTable("ablation-split", r.Table().String())
	b.ReportMetric(r.Compute[1]/r.Compute[0], "uniform-vs-paper-x")
}

var (
	ablThrOnce sync.Once
	ablThrRes  experiments.AblationThresholdResult
)

func BenchmarkAblationThreshold(b *testing.B) {
	ablThrOnce.Do(func() { ablThrRes = experiments.AblationThreshold(experiments.Paper) })
	printTable("ablation-threshold", ablThrRes.Table().String())
	for i := 0; i < b.N; i++ {
		_ = ablThrRes.Table().String()
	}
	b.ReportMetric(ablThrRes.Recall[2], "recall@0.5")
}

var (
	ablPermOnce sync.Once
	ablPermRes  experiments.AblationPermsResult
)

func BenchmarkAblationPerms(b *testing.B) {
	ablPermOnce.Do(func() { ablPermRes = experiments.AblationPerms(experiments.Paper) })
	printTable("ablation-perms", ablPermRes.Table().String())
	for i := 0; i < b.N; i++ {
		_ = ablPermRes.Table().String()
	}
	b.ReportMetric(ablPermRes.Transfer[len(ablPermRes.Transfer)-1], "transfer-acc")
}

var (
	ablDriftOnce sync.Once
	ablDriftRes  experiments.DriftResult
)

func BenchmarkAblationDrift(b *testing.B) {
	ablDriftOnce.Do(func() { ablDriftRes = experiments.AblationDrift(experiments.PaperSystem) })
	printTable("ablation-drift", ablDriftRes.Table().String())
	for i := 0; i < b.N; i++ {
		_ = ablDriftRes.Table().String()
	}
	n := len(ablDriftRes.Severities)
	b.ReportMetric((ablDriftRes.InSituAcc[n-1]-ablDriftRes.StaticAcc[n-1])*100, "adaptation-gain-%")
}

var (
	ablQuantOnce sync.Once
	ablQuantRes  experiments.QuantResult
)

func BenchmarkAblationQuant(b *testing.B) {
	ablQuantOnce.Do(func() { ablQuantRes = experiments.AblationQuant(experiments.Paper) })
	printTable("ablation-quant", ablQuantRes.Table().String())
	for i := 0; i < b.N; i++ {
		_ = ablQuantRes.Table().String()
	}
	n := len(ablQuantRes.Accuracy)
	b.ReportMetric(ablQuantRes.Accuracy[n-1]*100, "int8-acc-%")
	b.ReportMetric(ablQuantRes.LatencyMS[n-1], "int8-ms-per-img")
}

func BenchmarkAblationPipeline(b *testing.B) {
	var r experiments.AblationPipelineResult
	for i := 0; i < b.N; i++ {
		r = experiments.AblationPipeline()
	}
	printTable("ablation-pipeline", r.Table().String())
	b.ReportMetric(float64(r.PlannedB), "planned-bsize")
}

var (
	ablFaultsOnce sync.Once
	ablFaultsRes  experiments.FaultsResult
)

// BenchmarkAblationFaults sweeps the downlink fault rate against node
// accuracy and data movement: the closed loop's resilience curve (retry,
// rollback, graceful degradation) under an imperfect OTA link.
func BenchmarkAblationFaults(b *testing.B) {
	ablFaultsOnce.Do(func() { ablFaultsRes = experiments.AblationFaults(experiments.PaperSystem) })
	printTable("ablation-faults", ablFaultsRes.Table().String())
	for i := 0; i < b.N; i++ {
		_ = ablFaultsRes.Table().String()
	}
	n := len(ablFaultsRes.Rates)
	b.ReportMetric(ablFaultsRes.Accuracy[n-1], "faulty-acc")
	b.ReportMetric(ablFaultsRes.Accuracy[0]-ablFaultsRes.Accuracy[n-1], "acc-loss-at-0.6")
	b.ReportMetric(ablFaultsRes.RetransmitKB[n-1], "retransmit-KB")
}

var (
	ablFleetOnce sync.Once
	ablFleetRes  experiments.FleetResult
)

// BenchmarkAblationFleet sweeps fleet sizes through the concurrent
// multi-node deployment: aggregate node throughput should scale with N
// while the per-node costs stay flat.
func BenchmarkAblationFleet(b *testing.B) {
	scale := experiments.PaperFleet
	if testing.Short() {
		scale = experiments.SmallFleet
	}
	ablFleetOnce.Do(func() { ablFleetRes = experiments.AblationFleet(scale) })
	printTable("ablation-fleet", ablFleetRes.Table().String())
	for i := 0; i < b.N; i++ {
		_ = ablFleetRes.Table().String()
	}
	last := ablFleetRes.Rows[len(ablFleetRes.Rows)-1]
	b.ReportMetric(float64(last.Nodes), "max-nodes")
	b.ReportMetric(last.Speedup, "speedup-at-max-N")
	b.ReportMetric(last.Throughput, "imgs/s-at-max-N")
}
