// Command insitu-proxy is a lossy man-in-the-middle for the wire
// protocol: put it between insitu-node and insitu-cloud to inject
// *real* transport faults — dropped frames, flipped payload bytes,
// seeded delays — that the endpoints must absorb with CRC checks,
// retransmission and idempotent command handling:
//
//	insitu-proxy -listen 127.0.0.1:9444 -target 127.0.0.1:9433 -drop 0.1 -corrupt 0.1
//	insitu-node -connect 127.0.0.1:9444 -node-id 0
//
// Corruption never touches frame magic or length fields, so the stream
// stays framed and every fault is survivable; the final fleet reports
// must be byte-identical to a faultless run at the same seeds (`make
// wire-smoke` asserts exactly that). Interference counters print to
// stderr on SIGINT/SIGTERM.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"

	"insitu/internal/netsim"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9444", "address nodes dial")
	target := flag.String("target", "127.0.0.1:9433", "the real insitu-cloud address")
	seed := flag.Uint64("seed", 1, "fault dice seed")
	drop := flag.Float64("drop", 0, "per-frame drop probability")
	corrupt := flag.Float64("corrupt", 0, "per-frame corruption probability")
	maxDelay := flag.Duration("max-delay", 0, "per-frame delay upper bound (0 disables)")
	flag.Parse()

	if *drop < 0 || *corrupt < 0 || *drop+*corrupt > 1 {
		fmt.Fprintln(os.Stderr, "insitu-proxy: -drop/-corrupt must be non-negative and sum to at most 1")
		os.Exit(2)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "insitu-proxy:", err)
		os.Exit(1)
	}
	p := netsim.NewProxy(ln, *target, netsim.ProxyConfig{
		Seed:        *seed,
		DropProb:    *drop,
		CorruptProb: *corrupt,
		MaxDelay:    *maxDelay,
	})
	fmt.Fprintf(os.Stderr, "proxying %s -> %s (drop %.2f, corrupt %.2f, delay <=%s)\n",
		ln.Addr(), *target, *drop, *corrupt, *maxDelay)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	p.Close()
	st := p.Stats()
	fmt.Fprintf(os.Stderr, "insitu-proxy: %d frames forwarded, %d dropped, %d corrupted\n",
		st.Forwarded, st.Dropped, st.Corrupted)
}
