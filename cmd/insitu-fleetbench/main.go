// insitu-fleetbench regenerates BENCH_fleet.json, the machine-readable
// record of the fleet-scale benchmarks that the CI perf gate
// (insitu-benchdiff) compares against.
//
// Each -sizes entry runs the full closed loop (bootstrap + rounds) at
// that fleet size under the sharded-ingestion scale configuration and
// emits one row per size:
//
//	ns_per_op        p99 admission latency in nanoseconds (wall-clock;
//	                 gated with a generous tolerance)
//	bytes_per_op     peak live heap over the run's round boundaries
//	                 (recorded for the scaling story, not gated)
//	bytes_per_upload mean metered uplink bytes per uploaded sample
//	                 (deterministic; gated tight)
//
// Prior rounds in the output file are preserved verbatim, mirroring
// insitu-kernelbench: the file is a history, not a snapshot.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"insitu/internal/benchfmt"
	"insitu/internal/experiments"
	"insitu/internal/fleetcli"
	"insitu/internal/tensor"
)

// roundName is the block this tool (re)generates in the output file.
const roundName = "fleet-scale"

func main() {
	out := flag.String("out", "BENCH_fleet.json", "output file")
	sizes := flag.String("sizes", "1000", "comma-separated fleet sizes N to sweep")
	shards := flag.Int("shards", 8, "ingestion shards per run")
	maxLive := flag.Int("max-live-nodes", 128, "resident node states; the rest spill to disk")
	flag.Parse()

	s := experiments.ScaleFleet
	s.Sizes = fleetcli.ParseInts(*sizes, "fleet size")
	if len(s.Sizes) == 0 {
		fmt.Fprintln(os.Stderr, "insitu-fleetbench: -sizes is empty")
		os.Exit(2)
	}
	s.Shards = *shards
	s.MaxLiveNodes = *maxLive

	var rows []benchfmt.Row
	for _, n := range s.Sizes {
		fmt.Fprintf(os.Stderr, "running fleet N=%d (shards=%d, max-live=%d)...\n", n, s.Shards, s.MaxLiveNodes)
		one := s
		one.Sizes = []int{n}
		start := time.Now()
		res := experiments.AblationFleet(one)
		fmt.Fprintf(os.Stderr, "N=%d done in %.1fs\n", n, time.Since(start).Seconds())
		row := res.Rows[0]
		rows = append(rows, benchfmt.Row{
			Exp:            fmt.Sprintf("fleet/N=%d/S=%d", n, s.Shards),
			NsPerOp:        int64(row.AdmitP99Seconds * 1e9),
			BytesPerOp:     int64(row.PeakHeapBytes),
			BytesPerUpload: row.BytesPerUpload,
		})
	}

	d := benchfmt.Doc{
		Schema:    "insitu-kernel-bench/v2",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		CPU:       cpuModel(),
		HostProcs: runtime.NumCPU(),
		Kernel:    tensor.KernelName(),
		Kernels:   tensor.KernelNames(),
		Rounds:    loadPriorRounds(*out),
	}
	raw, err := json.Marshal(rows)
	if err != nil {
		fatal(err)
	}
	d.Rounds = append(d.Rounds, benchfmt.Round{
		Name: roundName,
		Note: "sharded ingestion at scale: ns_per_op is p99 admission latency (wall-clock), " +
			"bytes_per_op is peak live heap at round boundaries, bytes_per_upload is " +
			"deterministic uplink cost per sample. Caps: " +
			fmt.Sprintf("max-round-samples=%d max-calib-samples=%d eval-samples=%d max-live-nodes=%d batch-size=%d.",
				s.MaxRoundSamples, s.MaxCalibSamples, s.EvalSamples, s.MaxLiveNodes, s.BatchSize),
		Results: raw,
	})

	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d fleet rows)\n", *out, len(rows))
}

// loadPriorRounds keeps any rounds other than the one this run
// regenerates, so reruns replace rather than stack.
func loadPriorRounds(path string) []benchfmt.Round {
	d, err := benchfmt.Load(path)
	if err != nil {
		return nil
	}
	kept := d.Rounds[:0]
	for _, r := range d.Rounds {
		if r.Name != roundName {
			kept = append(kept, r)
		}
	}
	return kept
}

func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if name, ok := strings.CutPrefix(sc.Text(), "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return runtime.GOARCH
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "insitu-fleetbench:", err)
	os.Exit(1)
}
