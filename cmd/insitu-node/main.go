// Command insitu-node simulates one deep-learning IoT deployment through
// its incremental-update lifetime and prints a per-stage report:
//
//	insitu-node -variant d -bootstrap 100 -stages 200,400,800
//
// Variants follow the paper's Fig. 24: a (cloud-all), b
// (cloud-diagnosis), c (in-situ diagnosis), d (In-situ AI).
//
// Observability: -telemetry prints a Prometheus-style counter dump on
// exit, -trace-out FILE records stage/upload/deploy/planner events as
// JSONL (validate with insitu-tracecheck), and -pprof-addr serves
// pprof/expvar/metrics over HTTP while the simulation runs.
//
// Fault injection: -fault-rate 0.4 corrupts/drops 40% of Cloud→node
// deploy deliveries and -outage 1:3 blacks out a transfer window; the
// node retries with backoff, rolls back failed applies and keeps serving
// its previous model when a deployment never lands.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"insitu/internal/core"
	"insitu/internal/device"
	"insitu/internal/gpusim"
	"insitu/internal/metrics"
	"insitu/internal/models"
	"insitu/internal/obs"
	"insitu/internal/planner"
)

func main() {
	variant := flag.String("variant", "d", "IoT system variant: a, b, c or d")
	bootstrap := flag.Int("bootstrap", 100, "bootstrap capture size")
	stagesArg := flag.String("stages", "200,400,800", "comma-separated per-stage capture counts")
	seed := flag.Uint64("seed", 7, "simulation seed")
	classes := flag.Int("classes", 5, "object classes in the synthetic world")
	severity := flag.Float64("severity", 0.7, "in-situ condition severity [0,1]")
	latencyReq := flag.Float64("latency-req", 0.2, "per-frame latency requirement (s) for the serving plan")
	var obsFlags obs.Flags
	obsFlags.AddFlags(flag.CommandLine)
	flag.Parse()

	var kind core.SystemKind
	switch *variant {
	case "a":
		kind = core.SystemCloudAll
	case "b":
		kind = core.SystemCloudDiagnosis
	case "c":
		kind = core.SystemInSituDiagnosis
	case "d":
		kind = core.SystemInSituAI
	default:
		fmt.Fprintf(os.Stderr, "unknown variant %q (want a, b, c or d)\n", *variant)
		os.Exit(2)
	}

	var stages []int
	for _, part := range strings.Split(*stagesArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad stage size %q\n", part)
			os.Exit(2)
		}
		stages = append(stages, n)
	}

	faults, err := obsFlags.Faults(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "insitu-node:", err)
		os.Exit(2)
	}

	session, err := obs.Start(obsFlags)
	if err != nil {
		fmt.Fprintln(os.Stderr, "insitu-node:", err)
		os.Exit(1)
	}

	cfg := core.DefaultConfig(kind, *seed)
	cfg.Classes = *classes
	cfg.Severity = *severity
	cfg.Faults = faults
	cfg.Trace = session.Tracer
	sys := core.NewSystem(cfg)

	// Serving-configuration planning: after every deployment the node
	// re-plans its inference/diagnosis batches for the paper-scale model
	// on the TX1-class GPU (planner.plan trace events, Fig. 21 live).
	sim := gpusim.New(device.TX1())
	inferSpec := models.AlexNet()
	diagSpec := models.DiagnosisSpec(inferSpec, 100)
	replan := func() {
		planner.PlanSingleRunning(sim, inferSpec, diagSpec, *latencyReq, 256)
	}

	t := metrics.NewTable(
		fmt.Sprintf("In-situ AI node simulation — variant %s (%v)", *variant, kind),
		"stage", "captured", "uploaded", "upload frac", "trained",
		"uplink (J)", "cloud update (s)", "accuracy", "model", "deploy")
	add := func(r core.StageReport) {
		deployed := fmt.Sprintf("ok(%d)", r.DeployAttempts)
		if r.DeployFailed {
			deployed = fmt.Sprintf("FAILED(%d)", r.DeployAttempts)
		}
		if r.StaleModel {
			deployed += " stale"
		}
		t.AddRow(fmt.Sprintf("%d", r.Stage),
			fmt.Sprintf("%d", r.Captured),
			fmt.Sprintf("%d", r.Uploaded),
			fmt.Sprintf("%.2f", r.UploadFrac),
			fmt.Sprintf("%d", r.Trained),
			fmt.Sprintf("%.3f", r.UplinkJoules),
			fmt.Sprintf("%.2f", r.CloudCost.Seconds),
			fmt.Sprintf("%.3f", r.NodeAccuracy),
			fmt.Sprintf("v%d", r.ModelVersion),
			deployed)
	}

	fmt.Fprintln(os.Stderr, "bootstrapping...")
	add(sys.Bootstrap(*bootstrap))
	replan()
	for i, n := range stages {
		fmt.Fprintf(os.Stderr, "stage %d (%d images)...\n", i+1, n)
		add(sys.RunStage(n))
		replan()
	}
	fmt.Println(t.String())
	m := sys.Meter()
	fmt.Printf("uplink total: %d images, %.2f MB, %.3f J over %s\n",
		m.Items, float64(m.Bytes)/1e6, m.Joules, m.Link.Name)
	if link := sys.Downlink(); link != nil {
		fmt.Printf("downlink faults: %d transfers, %d corrupted, %d dropped, %d outage drops; %d retransmits (%.2f MB, %.3f J)\n",
			link.Stats.Transfers, link.Stats.Corrupted, link.Stats.Dropped, link.Stats.OutageDrops,
			m.Retransmits, float64(m.RetransmitBytes)/1e6, m.RetransmitJoules)
	}
	if err := session.Close(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "insitu-node:", err)
		os.Exit(1)
	}
}
