// Command insitu-node simulates one deep-learning IoT deployment through
// its incremental-update lifetime and prints a per-stage report:
//
//	insitu-node -variant d -bootstrap 100 -stages 200,400,800
//
// Variants follow the paper's Fig. 24: a (cloud-all), b
// (cloud-diagnosis), c (in-situ diagnosis), d (In-situ AI).
//
// Observability: -telemetry prints a Prometheus-style counter dump on
// exit, -trace-out FILE records stage/upload/deploy/planner events as
// JSONL (validate with insitu-tracecheck), and -pprof-addr serves
// pprof/expvar/metrics over HTTP while the simulation runs.
//
// Fault injection: -fault-rate 0.4 corrupts/drops 40% of Cloud→node
// deploy deliveries and -outage 1:3 blacks out a transfer window; the
// node retries with backoff, rolls back failed applies and keeps serving
// its previous model when a deployment never lands.
//
// Durability: -state-dir DIR writes a crash-safe snapshot (system state
// plus report history) after every -ckpt-every stages; -resume restarts
// from the latest good snapshot and finishes with output byte-identical
// to an uninterrupted run. -kill-after-stage N SIGKILLs the process
// right after stage N checkpoints — the deterministic crash used by
// `make crash-smoke`.
//
// Agent mode: -connect ADDR abandons the standalone simulation and
// instead serves as one node of a wire-protocol fleet (see
// cmd/insitu-cloud). The cloud pushes the node's whole configuration in
// the Welcome handshake, so the simulation flags above are ignored:
//
//	insitu-node -connect 127.0.0.1:9433 -node-id 0
//
// The agent survives the wire: when the connection dies it redials with
// jittered backoff for up to -reconnect-window and resumes the session
// the cloud kept for its node id.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"insitu/internal/ckpt"
	"insitu/internal/core"
	"insitu/internal/device"
	"insitu/internal/fleet"
	"insitu/internal/gpusim"
	"insitu/internal/metrics"
	"insitu/internal/models"
	"insitu/internal/node"
	"insitu/internal/obs"
	"insitu/internal/planner"
)

// runAgent serves the wire protocol under fleet.ServeLoop supervision:
// dial (retrying while the cloud comes up), serve, and on disconnect
// redial with jittered backoff to rejoin the session the cloud kept for
// this node id — until a clean Bye, a superseding process, or the
// reconnect window runs out.
func runAgent(addr string, nodeID int, window time.Duration) int {
	err := fleet.ServeLoop(fleet.AgentConfig{
		Addr:            addr,
		NodeID:          nodeID,
		ReconnectWindow: window,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "insitu-node: "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "insitu-node:", err)
		return 1
	}
	return 0
}

func main() {
	connect := flag.String("connect", "",
		"cloud address to serve as a wire-protocol fleet node (agent mode; simulation flags are ignored)")
	nodeID := flag.Int("node-id", -1, "requested fleet node id in -connect mode (-1 = cloud assigns)")
	reconnectWindow := flag.Duration("reconnect-window", time.Minute,
		"in -connect mode, keep redialing this long after losing the cloud before giving up (0 = exit with the first session)")
	variant := flag.String("variant", "d", "IoT system variant: a, b, c or d")
	bootstrap := flag.Int("bootstrap", 100, "bootstrap capture size")
	stagesArg := flag.String("stages", "200,400,800", "comma-separated per-stage capture counts")
	seed := flag.Uint64("seed", 7, "simulation seed")
	classes := flag.Int("classes", 5, "object classes in the synthetic world")
	severity := flag.Float64("severity", 0.7, "in-situ condition severity [0,1]")
	latencyReq := flag.Float64("latency-req", 0.2, "per-frame latency requirement (s) for the serving plan")
	killAfter := flag.Int("kill-after-stage", -1,
		"SIGKILL the process right after this stage's checkpoint lands (crash-injection; needs -state-dir)")
	var obsFlags obs.Flags
	obsFlags.AddFlags(flag.CommandLine)
	flag.Parse()

	if *connect != "" {
		os.Exit(runAgent(*connect, *nodeID, *reconnectWindow))
	}

	var kind core.SystemKind
	switch *variant {
	case "a":
		kind = core.SystemCloudAll
	case "b":
		kind = core.SystemCloudDiagnosis
	case "c":
		kind = core.SystemInSituDiagnosis
	case "d":
		kind = core.SystemInSituAI
	default:
		fmt.Fprintf(os.Stderr, "unknown variant %q (want a, b, c or d)\n", *variant)
		os.Exit(2)
	}

	var stages []int
	for _, part := range strings.Split(*stagesArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad stage size %q\n", part)
			os.Exit(2)
		}
		stages = append(stages, n)
	}

	faults, err := obsFlags.Faults(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "insitu-node:", err)
		os.Exit(2)
	}

	session, err := obs.Start(obsFlags)
	if err != nil {
		fmt.Fprintln(os.Stderr, "insitu-node:", err)
		os.Exit(1)
	}

	cfg := core.DefaultConfig(kind, *seed)
	cfg.Classes = *classes
	cfg.Severity = *severity
	cfg.Faults = faults
	cfg.Trace = session.Tracer

	store, err := obsFlags.OpenStore()
	if err != nil {
		fmt.Fprintln(os.Stderr, "insitu-node:", err)
		os.Exit(1)
	}
	if *killAfter >= 0 && store == nil {
		fmt.Fprintln(os.Stderr, "insitu-node: -kill-after-stage requires -state-dir")
		os.Exit(2)
	}

	// Fresh start, or resume from the latest good snapshot. The resumed
	// system continues the deterministic simulation exactly where the
	// snapshot left it, so the final output matches an uninterrupted run.
	var sys *core.System
	var ckp *node.Checkpointer
	if obsFlags.Resume {
		c, rerr := node.ResumeCheckpointer(store, cfg, obsFlags.CkptEvery)
		switch {
		case rerr == nil:
			ckp = c
			sys = c.System()
			fmt.Fprintf(os.Stderr, "resumed from %s at stage %d\n", store.Dir(), sys.Stage()-1)
		case errors.Is(rerr, ckpt.ErrNoSnapshot):
			fmt.Fprintln(os.Stderr, "no snapshot to resume from; starting fresh")
		default:
			fmt.Fprintln(os.Stderr, "insitu-node:", rerr)
			os.Exit(1)
		}
	}
	if sys == nil {
		sys = core.NewSystem(cfg)
		if store != nil {
			ckp = node.NewCheckpointer(store, sys, obsFlags.CkptEvery)
		}
	}

	// Serving-configuration planning: after every deployment the node
	// re-plans its inference/diagnosis batches for the paper-scale model
	// on the TX1-class GPU (planner.plan trace events, Fig. 21 live).
	sim := gpusim.New(device.TX1())
	inferSpec := models.AlexNet()
	diagSpec := models.DiagnosisSpec(inferSpec, 100)
	replan := func() {
		planner.PlanSingleRunning(sim, inferSpec, diagSpec, *latencyReq, 256)
	}

	t := metrics.NewTable(
		fmt.Sprintf("In-situ AI node simulation — variant %s (%v)", *variant, kind),
		"stage", "captured", "uploaded", "upload frac", "trained",
		"uplink (J)", "cloud update (s)", "accuracy", "model", "deploy")
	add := func(r core.StageReport) {
		deployed := fmt.Sprintf("ok(%d)", r.DeployAttempts)
		if r.DeployFailed {
			deployed = fmt.Sprintf("FAILED(%d)", r.DeployAttempts)
		}
		if r.StaleModel {
			deployed += " stale"
		}
		t.AddRow(fmt.Sprintf("%d", r.Stage),
			fmt.Sprintf("%d", r.Captured),
			fmt.Sprintf("%d", r.Uploaded),
			fmt.Sprintf("%.2f", r.UploadFrac),
			fmt.Sprintf("%d", r.Trained),
			fmt.Sprintf("%.3f", r.UplinkJoules),
			fmt.Sprintf("%.2f", r.CloudCost.Seconds),
			fmt.Sprintf("%.3f", r.NodeAccuracy),
			fmt.Sprintf("v%d", r.ModelVersion),
			deployed)
	}

	record := func(r core.StageReport) {
		add(r)
		if ckp != nil {
			if err := ckp.OnStage(r); err != nil {
				fmt.Fprintln(os.Stderr, "insitu-node: checkpoint:", err)
				os.Exit(1)
			}
		}
		if *killAfter >= 0 && r.Stage == *killAfter {
			// Crash injection: die the hard way, no cleanup, no flush —
			// exactly what the checkpoint discipline must survive.
			fmt.Fprintf(os.Stderr, "crash injection: SIGKILL after stage %d\n", r.Stage)
			proc, _ := os.FindProcess(os.Getpid())
			_ = proc.Kill()
			select {}
		}
	}

	// A resumed run re-prints the completed stages from the snapshot's
	// report history, then continues with the remaining schedule.
	done := 0
	if ckp != nil {
		for _, r := range ckp.History() {
			add(r)
		}
		done = len(ckp.History())
	}
	if done == 0 {
		fmt.Fprintln(os.Stderr, "bootstrapping...")
		record(sys.Bootstrap(*bootstrap))
		replan()
		done = 1
	}
	for i := done - 1; i < len(stages); i++ {
		n := stages[i]
		fmt.Fprintf(os.Stderr, "stage %d (%d images)...\n", i+1, n)
		record(sys.RunStage(n))
		replan()
	}
	// Seal the final state when the cadence left the last stages
	// unsnapshotted.
	if ckp != nil && len(ckp.History())%ckp.Every != 0 {
		if err := ckp.Save(); err != nil {
			fmt.Fprintln(os.Stderr, "insitu-node: checkpoint:", err)
			os.Exit(1)
		}
	}
	fmt.Println(t.String())
	m := sys.Meter()
	fmt.Printf("uplink total: %d images, %.2f MB, %.3f J over %s\n",
		m.Items, float64(m.Bytes)/1e6, m.Joules, m.Link.Name)
	if link := sys.Downlink(); link != nil {
		fmt.Printf("downlink faults: %d transfers, %d corrupted, %d dropped, %d outage drops; %d retransmits (%.2f MB, %.3f J)\n",
			link.Stats.Transfers, link.Stats.Corrupted, link.Stats.Dropped, link.Stats.OutageDrops,
			m.Retransmits, float64(m.RetransmitBytes)/1e6, m.RetransmitJoules)
	}
	if err := session.Close(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "insitu-node:", err)
		os.Exit(1)
	}
}
