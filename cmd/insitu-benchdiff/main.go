// Command insitu-benchdiff compares two BENCH_kernels.json documents
// row by row and exits nonzero when the new one regressed — the CI
// perf gate in front of the kernel work:
//
//	insitu-benchdiff -tolerance 0.5 BENCH_kernels.json fresh.json
//
// Rows are matched by (round, experiment, GOMAXPROCS); a row is a
// regression when new_ns > old_ns * (1 + tolerance). Rows present in
// only one document are reported but never fail the gate (new
// benchmarks must be addable without breaking CI). Exit codes: 0 clean,
// 1 regression, 2 usage error or no comparable rows.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"insitu/internal/benchfmt"
	"insitu/internal/metrics"
)

// rowDiff is one matched measurement pair.
type rowDiff struct {
	Key       string
	OldNs     int64
	NewNs     int64
	Ratio     float64 // NewNs / OldNs
	Regressed bool
	// Bytes-per-upload comparison, for fleet rows that carry it in both
	// documents (deterministic, so gated tighter than wall-clock).
	OldBytes       float64
	NewBytes       float64
	BytesRatio     float64
	BytesRegressed bool
}

// compare matches rows across two documents and flags regressions: a
// row fails when its wall-clock grew past tolerance, or — for rows
// carrying bytes_per_upload in both documents — when that grew past
// bytesTolerance. unmatched counts rows seen in exactly one document.
// The error is reserved for undecodable rounds.
func compare(oldDoc, newDoc benchfmt.Doc, tolerance, bytesTolerance float64) (diffs []rowDiff, unmatched int, err error) {
	index := func(d benchfmt.Doc) (map[string]benchfmt.Row, error) {
		m := make(map[string]benchfmt.Row)
		for _, rd := range d.Rounds {
			rows, err := rd.Rows()
			if err != nil {
				return nil, err
			}
			for _, r := range rows {
				m[benchfmt.Key(rd.Name, r)] = r
			}
		}
		return m, nil
	}
	oldRows, err := index(oldDoc)
	if err != nil {
		return nil, 0, err
	}
	newRows, err := index(newDoc)
	if err != nil {
		return nil, 0, err
	}
	for key, nr := range newRows {
		or, ok := oldRows[key]
		if !ok {
			unmatched++
			continue
		}
		d := rowDiff{Key: key, OldNs: or.NsPerOp, NewNs: nr.NsPerOp}
		if or.NsPerOp > 0 {
			d.Ratio = float64(nr.NsPerOp) / float64(or.NsPerOp)
			d.Regressed = d.Ratio > 1+tolerance
		}
		if or.BytesPerUpload > 0 && nr.BytesPerUpload > 0 {
			d.OldBytes, d.NewBytes = or.BytesPerUpload, nr.BytesPerUpload
			d.BytesRatio = nr.BytesPerUpload / or.BytesPerUpload
			d.BytesRegressed = d.BytesRatio > 1+bytesTolerance
		}
		diffs = append(diffs, d)
	}
	for key := range oldRows {
		if _, ok := newRows[key]; !ok {
			unmatched++
		}
	}
	sort.Slice(diffs, func(i, j int) bool { return diffs[i].Key < diffs[j].Key })
	return diffs, unmatched, nil
}

func main() {
	tolerance := flag.Float64("tolerance", 0.5, "allowed slowdown fraction (0.5 = fail past 1.5x)")
	bytesTolerance := flag.Float64("bytes-tolerance", 0.1,
		"allowed bytes_per_upload growth fraction for fleet rows carrying it (deterministic, so tight)")
	quiet := flag.Bool("q", false, "only print regressions")
	flag.Parse()
	if flag.NArg() != 2 || *tolerance < 0 {
		fmt.Fprintln(os.Stderr, "usage: insitu-benchdiff [-tolerance 0.5] [-q] old.json new.json")
		os.Exit(2)
	}
	oldDoc, err := benchfmt.Load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newDoc, err := benchfmt.Load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	diffs, unmatched, err := compare(oldDoc, newDoc, *tolerance, *bytesTolerance)
	if err != nil {
		fatal(err)
	}
	if len(diffs) == 0 {
		fmt.Fprintf(os.Stderr, "insitu-benchdiff: no comparable rows (%d unmatched) — wrong files?\n", unmatched)
		os.Exit(2)
	}

	tab := metrics.NewTable("benchmarks: old vs new", "row", "old ns/op", "new ns/op", "ratio", "B/upload", "verdict")
	regressions := 0
	for _, d := range diffs {
		verdict := "ok"
		if d.Regressed {
			verdict = "REGRESSION"
			regressions++
		}
		if d.BytesRegressed {
			verdict = "BYTES REGRESSION"
			regressions++
		}
		if *quiet && !d.Regressed && !d.BytesRegressed {
			continue
		}
		bytesCol := "-"
		if d.BytesRatio > 0 {
			bytesCol = fmt.Sprintf("%.2fx", d.BytesRatio)
		}
		tab.AddRow(d.Key,
			fmt.Sprintf("%d", d.OldNs), fmt.Sprintf("%d", d.NewNs),
			fmt.Sprintf("%.2fx", d.Ratio), bytesCol, verdict)
	}
	fmt.Print(tab.String())
	fmt.Printf("%d rows compared, %d unmatched, tolerance %.0f%%, %d regression(s)\n",
		len(diffs), unmatched, *tolerance*100, regressions)
	if regressions > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "insitu-benchdiff:", err)
	os.Exit(1)
}
