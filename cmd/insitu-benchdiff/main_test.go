package main

import (
	"encoding/json"
	"testing"

	"insitu/internal/benchfmt"
)

func docWith(t *testing.T, rows []benchfmt.Row) benchfmt.Doc {
	t.Helper()
	raw, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	return benchfmt.Doc{
		Schema: "insitu-kernel-bench/v2",
		Rounds: []benchfmt.Round{{Name: "round2-parallel-gemm", Results: raw}},
	}
}

// The acceptance fixture: an injected 2x matmul slowdown must trip the
// default 50% tolerance; identical inputs must not.
func TestCompareFlagsTwoTimesSlowdown(t *testing.T) {
	old := docWith(t, []benchfmt.Row{
		{Exp: "MatMul/256x256x256", GoMaxProcs: 1, NsPerOp: 1000},
		{Exp: "MatMul/512x512x512", GoMaxProcs: 1, NsPerOp: 8000},
	})
	slow := docWith(t, []benchfmt.Row{
		{Exp: "MatMul/256x256x256", GoMaxProcs: 1, NsPerOp: 2000}, // 2x: regression
		{Exp: "MatMul/512x512x512", GoMaxProcs: 1, NsPerOp: 8800}, // 1.1x: within tolerance
	})

	diffs, unmatched, err := compare(old, slow, 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if unmatched != 0 || len(diffs) != 2 {
		t.Fatalf("diffs = %d, unmatched = %d", len(diffs), unmatched)
	}
	if !diffs[0].Regressed || diffs[0].Ratio != 2 {
		t.Errorf("2x row not flagged: %+v", diffs[0])
	}
	if diffs[1].Regressed {
		t.Errorf("1.1x row flagged at 50%% tolerance: %+v", diffs[1])
	}

	clean, _, err := compare(old, old, 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range clean {
		if d.Regressed {
			t.Errorf("identical docs produced a regression: %+v", d)
		}
	}
}

// Rows are matched on round AND gomaxprocs: the same experiment at a
// different parallelism is a different measurement, and rows present on
// only one side count as unmatched without failing anything.
func TestCompareKeying(t *testing.T) {
	old := docWith(t, []benchfmt.Row{
		{Exp: "MatMul/256x256x256", GoMaxProcs: 1, NsPerOp: 1000},
		{Exp: "MatMul/256x256x256", GoMaxProcs: 4, NsPerOp: 400},
	})
	neu := docWith(t, []benchfmt.Row{
		{Exp: "MatMul/256x256x256", GoMaxProcs: 1, NsPerOp: 1000},
		{Exp: "MatMul/256x256x256", GoMaxProcs: 8, NsPerOp: 300}, // new setting
	})
	diffs, unmatched, err := compare(old, neu, 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 1 {
		t.Fatalf("diffs = %+v, want just the gomaxprocs=1 pair", diffs)
	}
	if unmatched != 2 { // old's procs=4 and new's procs=8
		t.Errorf("unmatched = %d, want 2", unmatched)
	}
}

// Disjoint documents have nothing to compare — the caller exits 2.
func TestCompareNoOverlap(t *testing.T) {
	a := docWith(t, []benchfmt.Row{{Exp: "A", NsPerOp: 1}})
	b := docWith(t, []benchfmt.Row{{Exp: "B", NsPerOp: 1}})
	diffs, unmatched, err := compare(a, b, 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(diffs) != 0 || unmatched != 2 {
		t.Fatalf("diffs = %d, unmatched = %d, want 0/2", len(diffs), unmatched)
	}
}

// A corrupt round must surface as an error, not a silent pass.
func TestCompareBadRound(t *testing.T) {
	bad := benchfmt.Doc{Rounds: []benchfmt.Round{{Name: "x", Results: json.RawMessage(`{"not":"rows"}`)}}}
	if _, _, err := compare(bad, bad, 0.5, 0.1); err == nil {
		t.Fatal("corrupt round compared cleanly")
	}
}

// Fleet rows carrying bytes_per_upload are gated on it separately and
// tighter than wall-clock: a 20% bytes growth fails at the default 10%
// even when the timing is fine, and rows missing the field on either
// side are never bytes-gated.
func TestCompareBytesPerUploadGate(t *testing.T) {
	old := docWith(t, []benchfmt.Row{
		{Exp: "fleet/N=1000/S=8", NsPerOp: 1000, BytesPerUpload: 5000},
		{Exp: "MatMul/256x256x256", NsPerOp: 1000}, // kernel row: no bytes field
	})
	neu := docWith(t, []benchfmt.Row{
		{Exp: "fleet/N=1000/S=8", NsPerOp: 1100, BytesPerUpload: 6000}, // 1.2x bytes
		{Exp: "MatMul/256x256x256", NsPerOp: 1100},
	})
	diffs, _, err := compare(old, neu, 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var fleetRow, kernelRow *rowDiff
	for i := range diffs {
		if diffs[i].OldBytes > 0 {
			fleetRow = &diffs[i]
		} else {
			kernelRow = &diffs[i]
		}
	}
	if fleetRow == nil || kernelRow == nil {
		t.Fatalf("diffs = %+v", diffs)
	}
	if !fleetRow.BytesRegressed || fleetRow.Regressed {
		t.Errorf("fleet row: bytes 1.2x should regress, timing 1.1x should not: %+v", fleetRow)
	}
	if kernelRow.BytesRegressed || kernelRow.BytesRatio != 0 {
		t.Errorf("kernel row picked up a bytes verdict: %+v", kernelRow)
	}

	clean, _, err := compare(old, old, 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range clean {
		if d.BytesRegressed {
			t.Errorf("identical docs produced a bytes regression: %+v", d)
		}
	}
}
