// Command insitu-bench regenerates the paper's evaluation artifacts by
// id:
//
//	insitu-bench -exp fig23            # one experiment
//	insitu-bench -exp all -scale small # everything, quick configuration
//
// Experiment ids: table1, fig5, fig6, fig7, fig11, fig12, fig14, fig15,
// fig16, fig21, fig22, fig23, table2, fig25, abl-split, abl-threshold,
// abl-perms, abl-pipeline, abl-drift, abl-quant, abl-faults, abl-crash,
// abl-fleet, all. -exp also accepts a comma-separated list; ids run in
// sorted order regardless of how they were given, so the -json report is
// ordered deterministically.
//
// -fault-rate / -outage inject downlink faults into every closed-loop
// experiment; abl-faults additionally sweeps the fault rate itself.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"insitu/internal/core"
	"insitu/internal/experiments"
	"insitu/internal/metrics"
	"insitu/internal/obs"
	"insitu/internal/telemetry"
	"insitu/internal/tensor"
)

// goAMD64Level reports the GOAMD64 microarchitecture level this binary
// was compiled for, so bench records are attributable to the instruction
// set they ran ("v3" builds assume AVX2 everywhere; "v1" builds rely on
// the runtime CPU probe to pick the kernel).
func goAMD64Level() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, set := range bi.Settings {
			if set.Key == "GOAMD64" {
				return set.Value
			}
		}
	}
	if runtime.GOARCH == "amd64" {
		return "v1" // the toolchain default
	}
	return ""
}

// benchRecord is one experiment's cost in the -json report. With
// -telemetry, Counters carries the kernel/pool/loop counter deltas
// attributed to this experiment (FLOPs, pack bytes, workspace hits,
// stages, uploads, …) next to the wall-clock cost.
type benchRecord struct {
	Exp        string           `json:"exp"`
	NsPerOp    int64            `json:"ns_per_op"`
	BytesPerOp uint64           `json:"bytes_per_op"`
	Counters   map[string]int64 `json:"counters,omitempty"`
}

// benchReport is the machine-readable artifact written by -json.
// Telemetry is the full end-of-run registry snapshot (counters, gauges,
// per-layer timing histograms) when -telemetry is set.
type benchReport struct {
	Schema     string              `json:"schema"`
	Timestamp  string              `json:"timestamp"`
	Scale      string              `json:"scale"`
	GoMaxProcs int                 `json:"gomaxprocs"`
	GoAMD64    string              `json:"goamd64,omitempty"`
	Kernel     string              `json:"kernel"`
	Results    []benchRecord       `json:"results"`
	Telemetry  *telemetry.Snapshot `json:"telemetry,omitempty"`
}

func main() {
	exp := flag.String("exp", "all", "experiment id, comma-separated list, or 'all'")
	scaleName := flag.String("scale", "paper", "learning-experiment scale: small, paper or scale (abl-fleet at N=1000, sharded)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	jsonPath := flag.String("json", "", "also write a BENCH json record (wall time and bytes allocated per experiment) to this path")
	var obsFlags obs.Flags
	obsFlags.AddFlags(flag.CommandLine)
	flag.Parse()

	scale := experiments.Paper
	sysScale := experiments.PaperSystem
	fleetScale := experiments.PaperFleet
	switch *scaleName {
	case "paper":
	case "small":
		scale = experiments.Small
		sysScale = experiments.SmallSystem
		fleetScale = experiments.SmallFleet
	case "scale":
		// Only abl-fleet is interesting here; the learning experiments run
		// at small scale so `-exp all -scale scale` still terminates.
		scale = experiments.Small
		sysScale = experiments.SmallSystem
		fleetScale = experiments.ScaleFleet
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	faults, err := obsFlags.Faults(sysScale.Seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "insitu-bench:", err)
		os.Exit(2)
	}
	// Injected faults apply to every closed-loop experiment's deploy path
	// (table2, fig25, abl-drift and the abl-faults baseline sweep).
	sysScale.Faults = faults
	fleetScale.Faults = faults

	session, err := obs.Start(obsFlags)
	if err != nil {
		fmt.Fprintln(os.Stderr, "insitu-bench:", err)
		os.Exit(1)
	}

	// The closed-loop comparison backs both table2 and fig25; build it
	// lazily and at most once.
	var cmp *core.Comparison
	systems := func() *core.Comparison {
		if cmp == nil {
			fmt.Fprintln(os.Stderr, "running closed-loop comparison (4 variants)...")
			cmp = experiments.RunSystems(sysScale)
		}
		return cmp
	}

	runners := map[string]func() *metrics.Table{
		"table1":        func() *metrics.Table { return experiments.TableI(scale).Table() },
		"fig5":          func() *metrics.Table { return experiments.Fig5(scale).Table() },
		"fig6":          func() *metrics.Table { return experiments.Fig6(scale).Table() },
		"fig7":          func() *metrics.Table { return experiments.Fig7(scale).Table() },
		"fig11":         func() *metrics.Table { return experiments.Fig11().Table() },
		"fig12":         func() *metrics.Table { return experiments.Fig12().Table() },
		"fig14":         func() *metrics.Table { return experiments.Fig14().Table() },
		"fig15":         func() *metrics.Table { return experiments.Fig15().Table() },
		"fig16":         func() *metrics.Table { return experiments.Fig16().Table() },
		"fig21":         func() *metrics.Table { return experiments.Fig21().Table() },
		"fig22":         func() *metrics.Table { return experiments.Fig22().Table() },
		"fig23":         func() *metrics.Table { return experiments.Fig23().Table() },
		"table2":        func() *metrics.Table { return experiments.TableII(systems()).Table() },
		"fig25":         func() *metrics.Table { return experiments.Fig25(systems()).Table() },
		"abl-split":     func() *metrics.Table { return experiments.AblationSplit().Table() },
		"abl-threshold": func() *metrics.Table { return experiments.AblationThreshold(scale).Table() },
		"abl-perms":     func() *metrics.Table { return experiments.AblationPerms(scale).Table() },
		"abl-pipeline":  func() *metrics.Table { return experiments.AblationPipeline().Table() },
		"abl-drift":     func() *metrics.Table { return experiments.AblationDrift(sysScale).Table() },
		"abl-quant":     func() *metrics.Table { return experiments.AblationQuant(scale).Table() },
		"abl-faults":    func() *metrics.Table { return experiments.AblationFaults(sysScale).Table() },
		"abl-crash":     func() *metrics.Table { return experiments.AblationCrash(sysScale).Table() },
		"abl-fleet":     func() *metrics.Table { return experiments.AblationFleet(fleetScale).Table() },
	}

	// Resolve -exp into a sorted, deduplicated id list: the report's
	// Results array (and the tables on stdout) come out in the same order
	// however the ids were spelled.
	var ids []string
	if *exp == "all" {
		for id := range runners {
			ids = append(ids, id)
		}
	} else {
		seen := map[string]bool{}
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if id != "" && !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
	}
	sort.Strings(ids)
	report := benchReport{
		Schema:     "insitu-bench/v1",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Scale:      *scaleName,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoAMD64:    goAMD64Level(),
		Kernel:     tensor.KernelName(),
	}
	for _, id := range ids {
		run, ok := runners[id]
		if !ok {
			known := make([]string, 0, len(runners))
			for k := range runners {
				known = append(known, k)
			}
			sort.Strings(known)
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s, all\n", id, strings.Join(known, ", "))
			os.Exit(2)
		}
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		telBefore := session.Registry.Snapshot()
		start := time.Now()
		table := run()
		elapsed := time.Since(start)
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		rec := benchRecord{
			Exp:        id,
			NsPerOp:    elapsed.Nanoseconds(),
			BytesPerOp: after.TotalAlloc - before.TotalAlloc,
		}
		if session.Registry != nil {
			rec.Counters = session.Registry.Snapshot().CounterDelta(telBefore)
		}
		report.Results = append(report.Results, rec)
		if *csv {
			fmt.Print(table.CSV())
		} else {
			fmt.Println(table.String())
		}
	}
	if session.Registry != nil {
		snap := session.Registry.Snapshot()
		report.Telemetry = &snap
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encoding -json report: %v\n", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing -json report: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonPath)
	}
	if err := session.Close(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "insitu-bench:", err)
		os.Exit(1)
	}
}
