// Command insitu-train runs the Cloud side of the bootstrap offline: it
// pre-trains the unsupervised jigsaw network on synthetic raw IoT data,
// transfer-learns the inference network, calibrates a diagnosis
// threshold and writes a deployable model bundle:
//
//	insitu-train -out model.isdp -classes 5 -images 256 -steps 150
//
// The bundle can be inspected or re-verified with -check:
//
//	insitu-train -check model.isdp -classes 5
//
// Durability: -state-dir DIR snapshots the supervised fine-tune every
// -ckpt-every steps (plus once right after transfer learning); -resume
// picks up at the exact step the latest snapshot holds and writes the
// same bundle an uninterrupted run would have.
package main

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"insitu/internal/ckpt"
	"insitu/internal/dataset"
	"insitu/internal/deploy"
	"insitu/internal/diagnosis"
	"insitu/internal/jigsaw"
	"insitu/internal/models"
	"insitu/internal/nn"
	"insitu/internal/obs"
	"insitu/internal/tensor"
	"insitu/internal/train"
	"insitu/internal/transfer"
)

// trainMagic frames one insitu-train snapshot: the world and jigsaw
// RNG positions, the jigsaw network, and the fine-tune loop state.
const trainMagic = "ISTR0001"

func main() {
	out := flag.String("out", "model.isdp", "output bundle path")
	check := flag.String("check", "", "verify an existing bundle instead of training")
	classes := flag.Int("classes", 5, "object classes")
	perms := flag.Int("perms", 8, "jigsaw permutation classes")
	images := flag.Int("images", 256, "raw training images")
	steps := flag.Int("steps", 150, "training steps per phase")
	seed := flag.Uint64("seed", 42, "seed")
	var obsFlags obs.Flags
	obsFlags.AddFlags(flag.CommandLine)
	flag.Parse()

	if *check != "" {
		verify(*check, *classes, *perms, *seed)
		return
	}

	session, err := obs.Start(obsFlags)
	if err != nil {
		fatal(err)
	}
	store, err := obsFlags.OpenStore()
	if err != nil {
		fatal(err)
	}

	world := dataset.NewGenerator(*classes, *seed)
	permSet := jigsaw.NewPermSet(*perms, *seed+1)
	jigNet := jigsaw.NewNet(*perms, *seed+2)
	trainer := jigsaw.NewTrainer(jigNet, permSet, 0.01, *seed+3)

	// The pool is regenerated on every start (resume included): it is a
	// pure function of the world RNG, whose position the snapshot carries.
	pool := world.MixedSet(*images, 0.5, 0.6)
	imgs := make([]*tensor.Tensor, len(pool))
	for i := range pool {
		imgs[i] = pool[i].Image
	}

	inference := models.TinyAlex(*classes, *seed+4)
	loop := train.NewLoop(inference, pool, train.DefaultConfig(*steps), 0)

	// Resume skips the jigsaw and transfer phases entirely: the snapshot
	// holds the post-transfer state at fine-tune step granularity.
	resumed := false
	if obsFlags.Resume {
		payload, _, rerr := store.LoadLatest()
		switch {
		case rerr == nil:
			if err := loadTrainSnapshot(payload, world, trainer, jigNet, loop); err != nil {
				fatal(err)
			}
			resumed = true
			fmt.Fprintf(os.Stderr, "resumed from %s at fine-tune step %d/%d\n",
				store.Dir(), loop.StepIndex(), *steps)
		case errors.Is(rerr, ckpt.ErrNoSnapshot):
			fmt.Fprintln(os.Stderr, "no snapshot to resume from; starting fresh")
		default:
			fatal(rerr)
		}
	}

	if !resumed {
		fmt.Fprintf(os.Stderr, "pre-training jigsaw net on %d unlabeled images (%d steps)...\n", *images, *steps)
		for step := 0; step < *steps; step++ {
			i0 := (step * 16) % len(imgs)
			end := i0 + 16
			if end > len(imgs) {
				end = len(imgs)
			}
			trainer.Step(imgs[i0:end])
		}
		evalN := len(imgs)
		if evalN > 64 {
			evalN = 64
		}
		fmt.Fprintf(os.Stderr, "jigsaw task accuracy: %.3f\n", trainer.Evaluate(imgs[:evalN]))

		fmt.Fprintf(os.Stderr, "transfer learning inference net (%d labels)...\n", len(pool))
		if _, err := transfer.FromUnsupervised(inference, jigNet, 3); err != nil {
			fatal(err)
		}
	}

	snapshot := func() {
		if store == nil {
			return
		}
		if err := saveTrainSnapshot(store, world, trainer, jigNet, loop); err != nil {
			fatal(err)
		}
	}
	if !resumed {
		// Seal the completed jigsaw+transfer phases before fine-tuning.
		snapshot()
	}
	every := obsFlags.CkptEvery
	if every < 1 {
		every = 1
	}
	for loop.Step() {
		if store != nil && loop.StepIndex()%every == 0 {
			snapshot()
		}
	}
	if loop.StepIndex()%every != 0 {
		snapshot()
	}
	acc := train.Evaluate(inference, world.MixedSet(200, 0.5, 0.6))
	fmt.Fprintf(os.Stderr, "inference accuracy: %.3f\n", acc)

	diag := diagnosis.NewJigsawDiagnoser(jigNet, permSet, 3, *seed+5)
	diagnosis.Calibrate(diag, pool, 1.2*(1-acc)+0.05)

	bundle, err := deploy.Pack(1, inference, jigNet, diag.Threshold())
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := bundle.Encode(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: version %d, threshold %.3f, %d bytes\n",
		*out, bundle.Version, bundle.Threshold, bundle.Size())
	if err := session.Close(os.Stderr); err != nil {
		fatal(err)
	}
}

func verify(path string, classes, perms int, seed uint64) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	bundle, err := deploy.Decode(f)
	if err != nil {
		fatal(fmt.Errorf("bundle invalid: %w", err))
	}
	inference := models.TinyAlex(classes, seed)
	jigNet := jigsaw.NewNet(perms, seed)
	if err := bundle.Apply(inference, jigNet, nil); err != nil {
		fatal(fmt.Errorf("bundle does not fit the declared architecture: %w", err))
	}
	fmt.Printf("%s OK: version %d, threshold %.3f, %d bytes, weights load cleanly\n",
		path, bundle.Version, bundle.Threshold, bundle.Size())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "insitu-train:", err)
	os.Exit(1)
}

// saveTrainSnapshot writes one crash-safe snapshot of the pipeline: the
// world and jigsaw RNG positions, the jigsaw network (weights + layer
// state) and the fine-tune loop (step, weights, optimizer momentum).
func saveTrainSnapshot(store *ckpt.Store, world *dataset.Generator, trainer *jigsaw.Trainer, jigNet *nn.Network, loop *train.Loop) error {
	var buf bytes.Buffer
	buf.WriteString(trainMagic)
	for _, v := range []uint64{world.RNGState(), trainer.RNGState()} {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	sections := []func(io.Writer) error{jigNet.SaveWeights, jigNet.SaveLayerState, loop.Save}
	for _, save := range sections {
		var sec bytes.Buffer
		if err := save(&sec); err != nil {
			return err
		}
		if err := binary.Write(&buf, binary.LittleEndian, uint64(sec.Len())); err != nil {
			return err
		}
		buf.Write(sec.Bytes())
	}
	_, err := store.Save(buf.Bytes())
	return err
}

// loadTrainSnapshot restores a snapshot into freshly constructed (and
// therefore structurally identical) pipeline objects.
func loadTrainSnapshot(payload []byte, world *dataset.Generator, trainer *jigsaw.Trainer, jigNet *nn.Network, loop *train.Loop) error {
	r := bytes.NewReader(payload)
	magic := make([]byte, len(trainMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return fmt.Errorf("reading snapshot magic: %w", err)
	}
	if string(magic) != trainMagic {
		return fmt.Errorf("bad snapshot magic %q", magic)
	}
	var rngs [2]uint64
	for i := range rngs {
		if err := binary.Read(r, binary.LittleEndian, &rngs[i]); err != nil {
			return err
		}
	}
	world.SetRNGState(rngs[0])
	trainer.SetRNGState(rngs[1])
	sections := []func(io.Reader) error{jigNet.LoadWeights, jigNet.LoadLayerState, loop.Load}
	for _, load := range sections {
		var n uint64
		if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
			return err
		}
		if n > uint64(r.Len()) {
			return fmt.Errorf("snapshot section length %d exceeds payload", n)
		}
		sec := make([]byte, n)
		if _, err := io.ReadFull(r, sec); err != nil {
			return err
		}
		if err := load(bytes.NewReader(sec)); err != nil {
			return err
		}
	}
	return nil
}
