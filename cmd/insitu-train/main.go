// Command insitu-train runs the Cloud side of the bootstrap offline: it
// pre-trains the unsupervised jigsaw network on synthetic raw IoT data,
// transfer-learns the inference network, calibrates a diagnosis
// threshold and writes a deployable model bundle:
//
//	insitu-train -out model.isdp -classes 5 -images 256 -steps 150
//
// The bundle can be inspected or re-verified with -check:
//
//	insitu-train -check model.isdp -classes 5
package main

import (
	"flag"
	"fmt"
	"os"

	"insitu/internal/dataset"
	"insitu/internal/deploy"
	"insitu/internal/diagnosis"
	"insitu/internal/jigsaw"
	"insitu/internal/models"
	"insitu/internal/obs"
	"insitu/internal/tensor"
	"insitu/internal/train"
	"insitu/internal/transfer"
)

func main() {
	out := flag.String("out", "model.isdp", "output bundle path")
	check := flag.String("check", "", "verify an existing bundle instead of training")
	classes := flag.Int("classes", 5, "object classes")
	perms := flag.Int("perms", 8, "jigsaw permutation classes")
	images := flag.Int("images", 256, "raw training images")
	steps := flag.Int("steps", 150, "training steps per phase")
	seed := flag.Uint64("seed", 42, "seed")
	var obsFlags obs.Flags
	obsFlags.AddFlags(flag.CommandLine)
	flag.Parse()

	if *check != "" {
		verify(*check, *classes, *perms, *seed)
		return
	}

	session, err := obs.Start(obsFlags)
	if err != nil {
		fatal(err)
	}

	world := dataset.NewGenerator(*classes, *seed)
	permSet := jigsaw.NewPermSet(*perms, *seed+1)
	jigNet := jigsaw.NewNet(*perms, *seed+2)
	trainer := jigsaw.NewTrainer(jigNet, permSet, 0.01, *seed+3)

	fmt.Fprintf(os.Stderr, "pre-training jigsaw net on %d unlabeled images (%d steps)...\n", *images, *steps)
	pool := world.MixedSet(*images, 0.5, 0.6)
	imgs := make([]*tensor.Tensor, len(pool))
	for i := range pool {
		imgs[i] = pool[i].Image
	}
	for step := 0; step < *steps; step++ {
		i0 := (step * 16) % len(imgs)
		end := i0 + 16
		if end > len(imgs) {
			end = len(imgs)
		}
		trainer.Step(imgs[i0:end])
	}
	evalN := len(imgs)
	if evalN > 64 {
		evalN = 64
	}
	fmt.Fprintf(os.Stderr, "jigsaw task accuracy: %.3f\n", trainer.Evaluate(imgs[:evalN]))

	fmt.Fprintf(os.Stderr, "transfer learning inference net (%d labels)...\n", len(pool))
	inference := models.TinyAlex(*classes, *seed+4)
	if _, err := transfer.FromUnsupervised(inference, jigNet, 3); err != nil {
		fatal(err)
	}
	train.Run(inference, pool, train.DefaultConfig(*steps), 0)
	acc := train.Evaluate(inference, world.MixedSet(200, 0.5, 0.6))
	fmt.Fprintf(os.Stderr, "inference accuracy: %.3f\n", acc)

	diag := diagnosis.NewJigsawDiagnoser(jigNet, permSet, 3, *seed+5)
	diagnosis.Calibrate(diag, pool, 1.2*(1-acc)+0.05)

	bundle, err := deploy.Pack(1, inference, jigNet, diag.Threshold())
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := bundle.Encode(f); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: version %d, threshold %.3f, %d bytes\n",
		*out, bundle.Version, bundle.Threshold, bundle.Size())
	if err := session.Close(os.Stderr); err != nil {
		fatal(err)
	}
}

func verify(path string, classes, perms int, seed uint64) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	bundle, err := deploy.Decode(f)
	if err != nil {
		fatal(fmt.Errorf("bundle invalid: %w", err))
	}
	inference := models.TinyAlex(classes, seed)
	jigNet := jigsaw.NewNet(perms, seed)
	if err := bundle.Apply(inference, jigNet, nil); err != nil {
		fatal(fmt.Errorf("bundle does not fit the declared architecture: %w", err))
	}
	fmt.Printf("%s OK: version %d, threshold %.3f, %d bytes, weights load cleanly\n",
		path, bundle.Version, bundle.Threshold, bundle.Size())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "insitu-train:", err)
	os.Exit(1)
}
