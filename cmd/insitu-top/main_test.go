package main

import (
	"strings"
	"testing"

	"insitu/internal/health"
)

func TestRenderAndVerdictGate(t *testing.T) {
	fs := health.FleetStatus{
		Rounds: 3, Healthy: 1, Unhealthy: 1,
		Nodes: []health.NodeStatus{
			{Node: 0, Verdict: "healthy", Rounds: 3, AdmitP99Seconds: 0.004, ModelVersion: 3},
			{Node: 1, Verdict: "unhealthy", Rounds: 3, FailureRate: 1, Stragglers: 2},
		},
	}
	out := render(fs)
	for _, want := range []string{"unhealthy", "healthy", "v3", "100%"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if err := checkVerdicts(fs); err != nil {
		t.Errorf("verdict gate failed a fully-judged fleet: %v", err)
	}
	if err := checkVerdicts(health.FleetStatus{}); err == nil {
		t.Error("verdict gate passed an empty fleet")
	}
	fs.Unknown = 1
	if err := checkVerdicts(fs); err == nil {
		t.Error("verdict gate passed an unknown verdict")
	}
}
