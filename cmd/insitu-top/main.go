// Command insitu-top is the fleet health dashboard: it renders the
// /fleetz document — per-node verdicts, windowed admission-latency
// percentiles, failure rates and accuracy drift — as a terminal table,
// either live against a running fleet's debug server or once from a
// snapshot file (the -health-out artifact), which is how CI asserts
// the health plane end to end:
//
//	insitu-top -addr 127.0.0.1:6060              # live, repaints every 2s
//	insitu-top -once -snapshot health.json       # render one snapshot
//	insitu-top -once -snapshot health.json -require-verdicts
//
// -require-verdicts exits 1 when the fleet is empty or any node is
// still verdict-less, so a smoke run that silently skipped the health
// plane fails loudly.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"insitu/internal/health"
	"insitu/internal/metrics"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6060", "debug server address to poll for /fleetz")
	snapshot := flag.String("snapshot", "", "render a FleetStatus JSON file instead of polling")
	once := flag.Bool("once", false, "render once and exit (implied by -snapshot)")
	interval := flag.Duration("interval", 2*time.Second, "poll/repaint interval in live mode")
	requireVerdicts := flag.Bool("require-verdicts", false, "exit 1 unless every node has a verdict")
	flag.Parse()

	if *snapshot != "" {
		*once = true
	}
	for {
		fs, err := load(*snapshot, *addr)
		if err != nil {
			fatal(err)
		}
		out := render(fs)
		if !*once {
			// Clear screen + home, like top.
			fmt.Print("\x1b[2J\x1b[H")
		}
		fmt.Print(out)
		if *once {
			if *requireVerdicts {
				if err := checkVerdicts(fs); err != nil {
					fatal(err)
				}
			}
			return
		}
		time.Sleep(*interval)
	}
}

func load(snapshot, addr string) (health.FleetStatus, error) {
	var fs health.FleetStatus
	if snapshot != "" {
		buf, err := os.ReadFile(snapshot)
		if err != nil {
			return fs, err
		}
		if err := json.Unmarshal(buf, &fs); err != nil {
			return fs, fmt.Errorf("%s: %w", snapshot, err)
		}
		return fs, nil
	}
	resp, err := http.Get("http://" + addr + "/fleetz")
	if err != nil {
		return fs, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fs, fmt.Errorf("GET /fleetz: status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&fs); err != nil {
		return fs, fmt.Errorf("GET /fleetz: %w", err)
	}
	return fs, nil
}

func render(fs health.FleetStatus) string {
	tab := metrics.NewTable(
		fmt.Sprintf("fleet health — %s (round %d: %d healthy / %d degraded / %d unhealthy / %d unknown)",
			fs.Status(), fs.Rounds, fs.Healthy, fs.Degraded, fs.Unhealthy, fs.Unknown),
		"node", "verdict", "link", "rounds", "fail rate", "p50 ms", "p95 ms", "p99 ms",
		"drift", "model", "stragglers")
	for _, n := range fs.Nodes {
		drift := fmt.Sprintf("%.3f", n.Drift)
		if n.Drifting {
			drift += " !"
		}
		link := "up"
		if n.Disconnected {
			link = "DISCONNECTED"
		} else if n.Rejoins > 0 {
			link = fmt.Sprintf("up (%d rejoins)", n.Rejoins)
		}
		tab.AddRow(
			fmt.Sprintf("%d", n.Node),
			n.Verdict,
			link,
			fmt.Sprintf("%d", n.Rounds),
			fmt.Sprintf("%.0f%%", n.FailureRate*100),
			fmt.Sprintf("%.2f", n.AdmitP50Seconds*1e3),
			fmt.Sprintf("%.2f", n.AdmitP95Seconds*1e3),
			fmt.Sprintf("%.2f", n.AdmitP99Seconds*1e3),
			drift,
			fmt.Sprintf("v%d", n.ModelVersion),
			fmt.Sprintf("%d", n.Stragglers),
		)
	}
	return tab.String()
}

func checkVerdicts(fs health.FleetStatus) error {
	if len(fs.Nodes) == 0 {
		return fmt.Errorf("fleet is empty: no node ever reported")
	}
	if fs.Unknown > 0 {
		return fmt.Errorf("%d node(s) never reached a verdict", fs.Unknown)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "insitu-top:", err)
	os.Exit(1)
}
