// insitu-kernelbench regenerates BENCH_kernels.json, the machine-readable
// record of the compute-kernel benchmarks.
//
// The float32 GEMM rows are measured at several GOMAXPROCS settings. The
// worker pool is sized once at first use from GOMAXPROCS, so the tool
// re-executes itself with the GOMAXPROCS environment variable set rather
// than flipping runtime.GOMAXPROCS mid-process; each child prints its rows
// as JSON on stdout and the parent assembles the document. The int8 rows
// compare the float32 eval path against the quantized path on the same
// layer shapes.
//
// Prior rounds already present in the output file are preserved verbatim:
// the file is a history of kernel work, not a single snapshot. A v1-schema
// file (one flat result list) is wrapped as the first round.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"
	"time"

	"insitu/internal/benchfmt"
	"insitu/internal/nn"
	"insitu/internal/quant"
	"insitu/internal/tensor"
)

// The row/round/document shapes live in internal/benchfmt, shared with
// insitu-benchdiff (the CI perf gate reads what this tool writes).
type (
	row   = benchfmt.Row
	round = benchfmt.Round
	doc   = benchfmt.Doc
)

func main() {
	measure := flag.String("measure", "", "internal: run one measurement set (matmul|int8) and print JSON rows")
	out := flag.String("out", "BENCH_kernels.json", "output file")
	benchtime := flag.Duration("benchtime", time.Second, "per-benchmark measuring time")
	flag.Parse()

	if *measure != "" {
		runMeasure(*measure, *benchtime)
		return
	}

	prior := loadPriorRounds(*out)

	// Float32 GEMM at increasing parallelism. On a single-vCPU host the
	// extra workers have no cores to run on, so the rows are flat there;
	// the invariants (identical results, 0 B/op) still hold at every
	// setting and the scaling shows up on wider hosts.
	var gemm []row
	for _, procs := range []int{1, 2, 4, 8} {
		fmt.Fprintf(os.Stderr, "measuring float32 GEMM at GOMAXPROCS=%d...\n", procs)
		rows, err := reexecMeasure("matmul", procs, *benchtime)
		if err != nil {
			fmt.Fprintf(os.Stderr, "insitu-kernelbench: %v\n", err)
			os.Exit(1)
		}
		gemm = append(gemm, rows...)
	}
	fmt.Fprintln(os.Stderr, "measuring int8 vs float32 layers...")
	int8rows, err := reexecMeasure("int8", 1, *benchtime)
	if err != nil {
		fmt.Fprintf(os.Stderr, "insitu-kernelbench: %v\n", err)
		os.Exit(1)
	}

	d := doc{
		Schema:    "insitu-kernel-bench/v2",
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		CPU:       cpuModel(),
		HostProcs: runtime.NumCPU(),
		GoAMD64:   goAMD64Level(),
		Kernel:    tensor.KernelName(),
		Kernels:   tensor.KernelNames(),
		Rounds:    prior,
	}
	d.Rounds = append(d.Rounds,
		round{
			Name: "round2-parallel-gemm",
			Note: "shared-packed-panel parallel GEMM on the persistent worker pool, widest micro-kernel auto-selected at init. " +
				fmt.Sprintf("Host has %d CPU(s): parallel rows only scale past gomaxprocs=%d.", runtime.NumCPU(), runtime.NumCPU()),
			Results: mustJSON(gemm),
		},
		round{
			Name: "round2-int8-inference",
			Note: "executable int8 eval path (per-channel symmetric weights, uint8 activations, int32 accumulate) vs the float32 eval path on the same layer shapes at GOMAXPROCS=1. " +
				"The paper's int8 win is the 4x weight-traffic cut; latency also wins where the GEMM dominates (Dense), while the conv row pays per-sample quantize+patch-gather overhead at these small shapes.",
			Results: mustJSON(int8rows),
		},
	)

	buf, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "insitu-kernelbench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "insitu-kernelbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d gemm rows, %d int8 rows, kernel=%s)\n",
		*out, len(gemm), len(int8rows), tensor.KernelName())
}

// loadPriorRounds reads an existing output file and returns its rounds.
// A v1 document (flat "results" list, no "rounds") is wrapped as one
// round so the history survives the schema change.
func loadPriorRounds(path string) []round {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var v2 doc
	if err := json.Unmarshal(buf, &v2); err == nil && len(v2.Rounds) > 0 {
		// Drop the rounds this run regenerates so reruns don't stack
		// duplicate blocks.
		kept := v2.Rounds[:0]
		for _, r := range v2.Rounds {
			if r.Name != "round2-parallel-gemm" && r.Name != "round2-int8-inference" {
				kept = append(kept, r)
			}
		}
		return kept
	}
	var v1 struct {
		Note    string          `json:"note"`
		Results json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(buf, &v1); err == nil && len(v1.Results) > 0 {
		return []round{{Name: "round1-blocked-sse", Note: v1.Note, Results: v1.Results}}
	}
	return nil
}

// reexecMeasure runs this binary again with GOMAXPROCS pinned in the
// environment (the worker pool is sized from it at first use) and decodes
// the rows the child prints.
func reexecMeasure(what string, procs int, benchtime time.Duration) ([]row, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(self, "-measure", what, "-benchtime", benchtime.String())
	cmd.Env = append(os.Environ(), fmt.Sprintf("GOMAXPROCS=%d", procs))
	cmd.Stderr = os.Stderr
	outBuf, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("child -measure %s (GOMAXPROCS=%d): %w", what, procs, err)
	}
	var rows []row
	if err := json.Unmarshal(outBuf, &rows); err != nil {
		return nil, fmt.Errorf("child -measure %s output: %w", what, err)
	}
	return rows, nil
}

func runMeasure(what string, benchtime time.Duration) {
	var rows []row
	switch what {
	case "matmul":
		rows = measureMatMul(benchtime)
	case "int8":
		rows = measureInt8(benchtime)
	default:
		fmt.Fprintf(os.Stderr, "unknown -measure %q\n", what)
		os.Exit(2)
	}
	buf, err := json.Marshal(rows)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(append(buf, '\n'))
}

// bench runs fn under the testing benchmark driver for the configured
// time and converts the result to a row.
func bench(exp string, flopsPerOp int64, benchtime time.Duration, fn func(b *testing.B)) row {
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		fn(b)
	})
	// testing.Benchmark ignores -test.benchtime outside go test; rerun
	// manually until the configured time is spent for stable numbers.
	for elapsed := res.T; elapsed < benchtime; elapsed += res.T {
		more := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			fn(b)
		})
		if more.NsPerOp() < res.NsPerOp() {
			res = more
		}
	}
	r := row{
		Exp:         exp,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NsPerOp:     res.NsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
	if flopsPerOp > 0 && res.NsPerOp() > 0 {
		r.MFlops = float64(flopsPerOp) / float64(res.NsPerOp()) * 1e3
	}
	return r
}

func measureMatMul(benchtime time.Duration) []row {
	var rows []row
	for _, s := range []int{256, 512, 1024} {
		r := tensor.NewRNG(1)
		a, b2, c := tensor.New(s, s), tensor.New(s, s), tensor.New(s, s)
		a.FillNormal(r, 0, 1)
		b2.FillNormal(r, 0, 1)
		tensor.MatMulInto(c, a, b2) // warm pack pools + worker pool
		rows = append(rows, bench(
			fmt.Sprintf("MatMul/%dx%dx%d", s, s, s),
			2*int64(s)*int64(s)*int64(s), benchtime,
			func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					tensor.MatMulInto(c, a, b2)
				}
			}))
	}
	return rows
}

func measureInt8(benchtime time.Duration) []row {
	var rows []row
	r := tensor.NewRNG(7)

	// Dense: the TinyAlex classifier head shape scaled up to make the
	// GEMM dominate (batch 64, 512 -> 512).
	d := nn.NewDense("fc", 512, 512, r)
	dq := quant.Quantize(nn.NewNetwork("bench-fc", d))
	x := tensor.New(64, 512)
	x.FillNormal(r, 0, 1)
	flops := 2 * int64(64) * 512 * 512
	f32 := bench("Dense/64x512x512/float32", flops, benchtime, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d.Forward(x, false)
		}
	})
	i8 := bench("Dense/64x512x512/int8", flops, benchtime, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dq.Forward(x)
		}
	})
	i8.Float32NsPerOp = f32.NsPerOp
	i8.Speedup = float64(f32.NsPerOp) / float64(i8.NsPerOp)
	rows = append(rows, f32, i8)

	// Conv: a mid-network TinyAlex block (16ch 16x16 -> 32ch, 3x3).
	g := tensor.Conv2DGeom{
		InChannels: 16, InHeight: 16, InWidth: 16,
		OutChannels: 32, KernelSize: 3, Stride: 1, Padding: 1,
	}
	cv := nn.NewConv2D("conv", g, r)
	cq := quant.Quantize(nn.NewNetwork("bench-conv", cv))
	xc := tensor.New(8, 16, 16, 16)
	xc.FillNormal(r, 0, 1)
	cflops := 2 * int64(8) * int64(g.OutChannels) * int64(g.OutHeight()*g.OutWidth()) *
		int64(g.InChannels*g.KernelSize*g.KernelSize)
	cf32 := bench("Conv/8x16x16x16->32/float32", cflops, benchtime, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cv.Forward(xc, false)
		}
	})
	ci8 := bench("Conv/8x16x16x16->32/int8", cflops, benchtime, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cq.Forward(xc)
		}
	})
	ci8.Float32NsPerOp = cf32.NsPerOp
	ci8.Speedup = float64(cf32.NsPerOp) / float64(ci8.NsPerOp)
	rows = append(rows, cf32, ci8)
	return rows
}

func mustJSON(v any) json.RawMessage {
	buf, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return buf
}

func cpuModel() string {
	f, err := os.Open("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if name, ok := strings.CutPrefix(sc.Text(), "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return runtime.GOARCH
}

// goAMD64Level reports the GOAMD64 microarchitecture level this binary
// was compiled for ("v1".."v4"), or "" off amd64.
func goAMD64Level() string {
	if runtime.GOARCH != "amd64" {
		return ""
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "GOAMD64" {
				return s.Value
			}
		}
	}
	return "v1"
}
