// Command insitu-fleet simulates a concurrent multi-node deployment:
// one Cloud server servicing N in-situ nodes, each on its own goroutine
// with its own dataset shard and faulty links:
//
//	insitu-fleet -nodes 16 -bootstrap 64 -rounds 48,48
//
// Per round, every node captures and diagnoses its shard, uploads the
// unrecognized slice, the server aggregates the fleet's uploads under an
// admission cap (-max-round-samples), retrains ONCE, recalibrates on the
// pooled calibration samples and fans the versioned bundle out over each
// node's downlink with retry/rollback.
//
// Fault injection: -fault-rate / -outage shape every node's downlink
// (per-node seeds), -uplink-fault-rate loses upload batches in transit,
// and -outage-nodes 2,5 puts whole nodes into permanent blackout — the
// rest of the fleet must keep converging without them.
//
// Durability: -state-dir DIR checkpoints the whole fleet (server,
// replay pool, every node) after every -ckpt-every rounds; -resume
// continues byte-identically. -kill-after-round N SIGKILLs the process
// right after round N checkpoints — the crash used by `make fleet-smoke`.
//
// Health plane: every run tracks per-node verdicts (windowed failure
// rates, admission-latency percentiles, accuracy drift vs the
// deploy-time baseline). With -pprof-addr set, /healthz and /fleetz
// serve them live (insitu-top renders /fleetz); -health-out FILE writes
// the final fleet status JSON for insitu-top -once. -drift-drop tunes
// the drift monitor (0 disables it — the EXPERIMENTS ablation knob) and
// -admit-p99-slo adds a latency SLO.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"insitu/internal/ckpt"
	"insitu/internal/core"
	"insitu/internal/fleet"
	"insitu/internal/health"
	"insitu/internal/metrics"
	"insitu/internal/netsim"
	"insitu/internal/obs"
)

func parseInts(arg, what string) []int {
	var out []int
	if strings.TrimSpace(arg) == "" {
		return out
	}
	for _, part := range strings.Split(arg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 0 {
			fmt.Fprintf(os.Stderr, "bad %s %q\n", what, part)
			os.Exit(2)
		}
		out = append(out, n)
	}
	return out
}

func main() {
	nodes := flag.Int("nodes", 4, "fleet size N")
	variant := flag.String("variant", "d", "IoT system variant: a, b, c or d")
	bootstrap := flag.Int("bootstrap", 64, "per-node bootstrap capture size")
	roundsArg := flag.String("rounds", "48,48", "comma-separated per-node capture counts per round")
	seed := flag.Uint64("seed", 7, "simulation seed")
	classes := flag.Int("classes", 5, "object classes in the synthetic world")
	severity := flag.Float64("severity", 0.7, "in-situ condition severity [0,1]")
	outageNodes := flag.String("outage-nodes", "", "comma-separated node ids in permanent link blackout")
	uplinkFaultRate := flag.Float64("uplink-fault-rate", 0,
		"per-transfer probability an upload batch is lost (half corruption, half drops)")
	queueDepth := flag.Int("queue-depth", 0, "server ingestion queue bound in messages (0 = N)")
	maxRoundSamples := flag.Int("max-round-samples", 0, "per-round retrain admission cap in samples (0 = unlimited)")
	killAfter := flag.Int("kill-after-round", -1,
		"SIGKILL the process right after this round's checkpoint lands (crash-injection; needs -state-dir)")
	driftDrop := flag.Float64("drift-drop", 0.15,
		"degrade a node whose EWMA accuracy falls this far below its deploy-time baseline (0 disables the drift monitor)")
	admitP99SLO := flag.Float64("admit-p99-slo", 0,
		"degrade a node whose windowed p99 admission latency exceeds this many seconds (0 disables)")
	healthOut := flag.String("health-out", "",
		"write the final fleet health status (the /fleetz document) to this JSON file")
	var obsFlags obs.Flags
	obsFlags.AddFlags(flag.CommandLine)
	flag.Parse()

	var kind core.SystemKind
	switch *variant {
	case "a":
		kind = core.SystemCloudAll
	case "b":
		kind = core.SystemCloudDiagnosis
	case "c":
		kind = core.SystemInSituDiagnosis
	case "d":
		kind = core.SystemInSituAI
	default:
		fmt.Fprintf(os.Stderr, "unknown variant %q (want a, b, c or d)\n", *variant)
		os.Exit(2)
	}
	rounds := parseInts(*roundsArg, "round size")

	downFaults, err := obsFlags.Faults(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "insitu-fleet:", err)
		os.Exit(2)
	}

	hslo := health.SLO{AdmitP99Seconds: *admitP99SLO}
	if *driftDrop <= 0 {
		hslo.DriftDisabled = true
	} else {
		hslo.DriftDrop = *driftDrop
	}
	tracker := health.NewTracker(hslo)

	session, err := obs.Start(obsFlags, tracker.Routes()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "insitu-fleet:", err)
		os.Exit(1)
	}
	tracker.AttachTelemetry(session.Registry)

	cfg := fleet.DefaultConfig(kind, *nodes, *seed)
	cfg.Classes = *classes
	cfg.Severity = *severity
	cfg.DownlinkFaults = downFaults
	cfg.UplinkFaults = netsim.FaultConfig{
		CorruptProb: *uplinkFaultRate / 2,
		DropProb:    *uplinkFaultRate / 2,
	}
	cfg.OutageNodes = parseInts(*outageNodes, "outage node id")
	cfg.QueueDepth = *queueDepth
	cfg.MaxRoundSamples = *maxRoundSamples
	cfg.Trace = session.Tracer
	cfg.Health = tracker

	store, err := obsFlags.OpenStore()
	if err != nil {
		fmt.Fprintln(os.Stderr, "insitu-fleet:", err)
		os.Exit(1)
	}
	if *killAfter >= 0 && store == nil {
		fmt.Fprintln(os.Stderr, "insitu-fleet: -kill-after-round requires -state-dir")
		os.Exit(2)
	}

	// Fresh start, or resume from the latest good snapshot: the
	// round-synchronous fleet is deterministic, so a resumed run's
	// report history byte-matches an uninterrupted one's.
	var fl *fleet.Fleet
	var ckp *fleet.Checkpointer
	if obsFlags.Resume {
		c, rerr := fleet.ResumeCheckpointer(store, cfg, obsFlags.CkptEvery)
		switch {
		case rerr == nil:
			ckp = c
			fl = c.Fleet()
			fmt.Fprintf(os.Stderr, "resumed from %s at round %d\n", store.Dir(), fl.Round()-1)
		case errors.Is(rerr, ckpt.ErrNoSnapshot):
			fmt.Fprintln(os.Stderr, "no snapshot to resume from; starting fresh")
		default:
			fmt.Fprintln(os.Stderr, "insitu-fleet:", rerr)
			os.Exit(1)
		}
	}
	if fl == nil {
		fl = fleet.New(cfg)
		if store != nil {
			ckp = fleet.NewCheckpointer(store, fl, obsFlags.CkptEvery)
		}
	}
	if ckp != nil && session.Registry != nil {
		// Snapshots carry the registry (histogram buckets included) so
		// quantile state survives a crash; on resume the stored snapshot
		// lands back in the live registry here.
		ckp.AttachRegistry(session.Registry)
	}
	defer fl.Close()

	t := metrics.NewTable(
		fmt.Sprintf("In-situ AI fleet simulation — %d nodes, variant %s (%v)", *nodes, *variant, kind),
		"round", "uploaded", "admitted", "trained", "cloud (s)",
		"cloud/node (s)", "mean acc", "model", "failures")
	add := func(r fleet.RoundReport) {
		failures := 0
		for _, nr := range r.Nodes {
			if nr.UploadFailed || nr.DeployFailed || nr.TimedOut {
				failures++
			}
		}
		t.AddRow(fmt.Sprintf("%d", r.Round),
			fmt.Sprintf("%d", r.Uploaded),
			fmt.Sprintf("%d", r.Admitted),
			fmt.Sprintf("%d", r.Trained),
			fmt.Sprintf("%.2f", r.CloudCost.Seconds),
			fmt.Sprintf("%.2f", r.PerNodeCloudCost.Seconds),
			fmt.Sprintf("%.3f", r.MeanAccuracy),
			fmt.Sprintf("v%d", r.CloudVersion),
			fmt.Sprintf("%d/%d", failures, len(r.Nodes)))
	}

	// captured counts only the rounds this process ran: WallSeconds does
	// not cover a resumed run's pre-crash rounds either.
	captured := 0
	record := func(r fleet.RoundReport) {
		add(r)
		for _, nr := range r.Nodes {
			captured += nr.Captured
		}
		if ckp != nil {
			if err := ckp.OnRound(r); err != nil {
				fmt.Fprintln(os.Stderr, "insitu-fleet: checkpoint:", err)
				os.Exit(1)
			}
		}
		if *killAfter >= 0 && r.Round == *killAfter {
			// Crash injection: die the hard way, no cleanup, no flush —
			// exactly what the checkpoint discipline must survive.
			fmt.Fprintf(os.Stderr, "crash injection: SIGKILL after round %d\n", r.Round)
			proc, _ := os.FindProcess(os.Getpid())
			_ = proc.Kill()
			select {}
		}
	}

	// A resumed run re-prints the completed rounds from the snapshot's
	// history, then continues with the remaining schedule.
	done := 0
	var last fleet.RoundReport
	if ckp != nil {
		for _, r := range ckp.History() {
			add(r)
			last = r
		}
		done = len(ckp.History())
	}
	if done == 0 {
		fmt.Fprintf(os.Stderr, "bootstrapping %d nodes (%d images each)...\n", *nodes, *bootstrap)
		last = fl.Bootstrap(*bootstrap)
		record(last)
		done = 1
	}
	for i := done - 1; i < len(rounds); i++ {
		n := rounds[i]
		fmt.Fprintf(os.Stderr, "round %d (%d images per node)...\n", i+1, n)
		last = fl.RunRound(n)
		record(last)
	}
	if ckp != nil && len(ckp.History())%ckp.Every != 0 {
		if err := ckp.Save(); err != nil {
			fmt.Fprintln(os.Stderr, "insitu-fleet: checkpoint:", err)
			os.Exit(1)
		}
	}
	fmt.Println(t.String())

	// Final per-node view of the last round.
	nt := metrics.NewTable("per-node outcome (final round)",
		"node", "captured", "uploaded", "upload frac", "uplink (J)",
		"accuracy", "model", "status")
	for _, nr := range last.Nodes {
		status := fmt.Sprintf("ok(%d)", nr.DeployAttempts)
		switch {
		case nr.TimedOut:
			status = "TIMED OUT"
		case nr.DeployFailed:
			status = fmt.Sprintf("DEPLOY FAILED(%d)", nr.DeployAttempts)
		case nr.UploadFailed:
			status = "upload lost"
		}
		if nr.StaleModel {
			status += " stale"
		}
		nt.AddRow(fmt.Sprintf("%d", nr.Node),
			fmt.Sprintf("%d", nr.Captured),
			fmt.Sprintf("%d", nr.Uploaded),
			fmt.Sprintf("%.2f", nr.UploadFrac),
			fmt.Sprintf("%.3f", nr.UplinkJoules),
			fmt.Sprintf("%.3f", nr.NodeAccuracy),
			fmt.Sprintf("v%d", nr.ModelVersion),
			status)
	}
	fmt.Println(nt.String())

	// Stderr, not stdout: wall-clock varies run to run, and stdout is
	// byte-compared between crashed-and-resumed and uninterrupted runs.
	if wall := fl.WallSeconds(); wall > 0 && captured > 0 {
		fmt.Fprintf(os.Stderr, "aggregate throughput: %d images in %.2fs wall = %.1f imgs/s across %d nodes\n",
			captured, wall, float64(captured)/wall, *nodes)
	}

	// Health summary: stderr one-liner always (wall-clock-derived, so
	// never stdout), full document to -health-out for insitu-top -once.
	hs := tracker.Snapshot()
	fmt.Fprintf(os.Stderr, "fleet health: %s (%d healthy / %d degraded / %d unhealthy / %d unknown)\n",
		hs.Status(), hs.Healthy, hs.Degraded, hs.Unhealthy, hs.Unknown)
	if *healthOut != "" {
		buf, err := json.MarshalIndent(hs, "", "  ")
		if err == nil {
			err = os.WriteFile(*healthOut, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "insitu-fleet: writing -health-out:", err)
			os.Exit(1)
		}
	}

	if err := session.Close(os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "insitu-fleet:", err)
		os.Exit(1)
	}
}
