// Command insitu-fleet simulates a concurrent multi-node deployment:
// one Cloud server servicing N in-situ nodes, each on its own goroutine
// with its own dataset shard and faulty links:
//
//	insitu-fleet -nodes 16 -bootstrap 64 -rounds 48,48
//
// Per round, every node captures and diagnoses its shard, uploads the
// unrecognized slice, the server aggregates the fleet's uploads under an
// admission cap (-max-round-samples), retrains ONCE, recalibrates on the
// pooled calibration samples and fans the versioned bundle out over each
// node's downlink with retry/rollback.
//
// Fault injection: -fault-rate / -outage shape every node's downlink
// (per-node seeds), -uplink-fault-rate loses upload batches in transit,
// and -outage-nodes 2,5 puts whole nodes into permanent blackout — the
// rest of the fleet must keep converging without them.
//
// Durability: -state-dir DIR checkpoints the whole fleet (server,
// replay pool, every node) after every -ckpt-every rounds; -resume
// continues byte-identically. -kill-after-round N SIGKILLs the process
// right after round N checkpoints — the crash used by `make fleet-smoke`.
//
// Health plane: every run tracks per-node verdicts (windowed failure
// rates, admission-latency percentiles, accuracy drift vs the
// deploy-time baseline). With -pprof-addr set, /healthz and /fleetz
// serve them live (insitu-top renders /fleetz); -health-out FILE writes
// the final fleet status JSON for insitu-top -once. -drift-drop tunes
// the drift monitor (0 disables it — the EXPERIMENTS ablation knob) and
// -admit-p99-slo adds a latency SLO.
//
// The same driver also runs across real process boundaries: see
// cmd/insitu-cloud (the wire server) and insitu-node -connect (the
// agent). For the same flags both deployments print identical stdout.
package main

import (
	"flag"
	"os"

	"insitu/internal/fleet"
	"insitu/internal/fleetcli"
)

func main() {
	var o fleetcli.Options
	o.AddFlags(flag.CommandLine)
	flag.Parse()
	os.Exit(o.Run("insitu-fleet", func(cfg fleet.Config) (*fleet.Fleet, error) {
		return fleet.New(cfg), nil
	}))
}
