// Command insitu-tracecheck validates a JSONL trace produced with
// -trace-out: every line must parse, sequence numbers must be dense and
// timestamps monotonic. It prints per-event counts and can assert that
// specific events are present, which is how `make trace-smoke` and CI
// verify a live run end to end:
//
//	insitu-tracecheck -require core.stage,core.upload,planner.plan trace.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"insitu/internal/telemetry"
)

func main() {
	require := flag.String("require", "", "comma-separated event names that must appear at least once")
	quiet := flag.Bool("q", false, "suppress the per-event summary")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: insitu-tracecheck [-require ev1,ev2] [-q] trace.jsonl")
		os.Exit(2)
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	stats, err := telemetry.ValidateTrace(f)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	if stats.Records == 0 {
		fatal(fmt.Errorf("%s: trace is empty", path))
	}
	if !*quiet {
		events := make([]string, 0, len(stats.ByEvent))
		for ev := range stats.ByEvent {
			events = append(events, ev)
		}
		sort.Strings(events)
		for _, ev := range events {
			fmt.Printf("%-24s %d\n", ev, stats.ByEvent[ev])
		}
	}
	var missing []string
	if *require != "" {
		for _, ev := range strings.Split(*require, ",") {
			ev = strings.TrimSpace(ev)
			if ev != "" && stats.ByEvent[ev] == 0 {
				missing = append(missing, ev)
			}
		}
	}
	if len(missing) > 0 {
		fatal(fmt.Errorf("%s: %d records OK but required events missing: %s",
			path, stats.Records, strings.Join(missing, ", ")))
	}
	fmt.Printf("%s: %d records OK\n", path, stats.Records)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "insitu-tracecheck:", err)
	os.Exit(1)
}
