// Command insitu-tracecheck validates a JSONL trace produced with
// -trace-out: every line must parse, sequence numbers must be dense and
// timestamps monotonic. It prints per-event counts and can assert that
// specific events are present, which is how `make trace-smoke` and CI
// verify a live run end to end:
//
//	insitu-tracecheck -require core.stage,core.upload,planner.plan trace.jsonl
//	insitu-tracecheck -stats fleet.jsonl     # per-span duration table
//
// Any invalid line makes the exit code nonzero; validation still scans
// the whole file and reports every violation (capped), so one corrupt
// record cannot hide the rest.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"insitu/internal/metrics"
	"insitu/internal/telemetry"
)

func main() {
	require := flag.String("require", "", "comma-separated event names that must appear at least once")
	quiet := flag.Bool("q", false, "suppress the per-event summary")
	withStats := flag.Bool("stats", false, "print per-span-kind duration stats (count, total, mean, max)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: insitu-tracecheck [-require ev1,ev2] [-stats] [-q] trace.jsonl")
		os.Exit(2)
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()

	stats, verr := telemetry.ValidateTrace(f)
	if !*quiet {
		events := make([]string, 0, len(stats.ByEvent))
		for ev := range stats.ByEvent {
			events = append(events, ev)
		}
		sort.Strings(events)
		for _, ev := range events {
			fmt.Printf("%-24s %d\n", ev, stats.ByEvent[ev])
		}
	}
	if *withStats && len(stats.Durations) > 0 {
		kinds := make([]string, 0, len(stats.Durations))
		for ev := range stats.Durations {
			kinds = append(kinds, ev)
		}
		sort.Strings(kinds)
		tab := metrics.NewTable("span durations", "span", "count", "total ms", "mean ms", "max ms")
		for _, ev := range kinds {
			d := stats.Durations[ev]
			tab.AddRow(ev,
				fmt.Sprintf("%d", d.Count),
				fmt.Sprintf("%.2f", float64(d.TotalNs)/1e6),
				fmt.Sprintf("%.2f", float64(d.MeanNs())/1e6),
				fmt.Sprintf("%.2f", float64(d.MaxNs)/1e6))
		}
		fmt.Print(tab.String())
	}
	if verr != nil {
		for _, e := range stats.Errors {
			fmt.Fprintln(os.Stderr, "insitu-tracecheck:", e)
		}
		if extra := stats.InvalidLines - len(stats.Errors); extra > 0 {
			fmt.Fprintf(os.Stderr, "insitu-tracecheck: ... and %d more invalid line(s)\n", extra)
		}
		fatal(fmt.Errorf("%s: %d invalid line(s)", path, stats.InvalidLines))
	}
	if stats.Records == 0 {
		fatal(fmt.Errorf("%s: trace is empty", path))
	}
	var missing []string
	if *require != "" {
		for _, ev := range strings.Split(*require, ",") {
			ev = strings.TrimSpace(ev)
			if ev != "" && stats.ByEvent[ev] == 0 {
				missing = append(missing, ev)
			}
		}
	}
	if len(missing) > 0 {
		fatal(fmt.Errorf("%s: %d records OK but required events missing: %s",
			path, stats.Records, strings.Join(missing, ", ")))
	}
	fmt.Printf("%s: %d records OK\n", path, stats.Records)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "insitu-tracecheck:", err)
	os.Exit(1)
}
