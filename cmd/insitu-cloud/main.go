// Command insitu-cloud is the standalone Cloud server of the wire
// deployment: the same round-synchronous fleet loop as insitu-fleet,
// but its N nodes are real insitu-node processes on the far side of
// TCP connections speaking the internal/wire protocol:
//
//	insitu-cloud -listen 127.0.0.1:9433 -nodes 2 -rounds 24 &
//	insitu-node -connect 127.0.0.1:9433 -node-id 0 &
//	insitu-node -connect 127.0.0.1:9433 -node-id 1 &
//
// The cloud blocks until all -nodes agents have handshaken, then runs
// the schedule exactly as the in-process binary would: same flags,
// same checkpoint format (-state-dir / -resume restore node state over
// the wire), same health plane (/fleetz with -pprof-addr), and
// byte-identical stdout for the same seeds — `make wire-smoke` diffs
// the two.
//
// Transport faults (drops, corruption, delays — e.g. from
// insitu-proxy) are absorbed by CRC framing, retransmission and
// idempotent commands; the *simulated* LossyLink faults stay node-side
// so the reports match the in-process run bit for bit.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"insitu/internal/fleet"
	"insitu/internal/fleetcli"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9433", "address to accept insitu-node connections on")
	var o fleetcli.Options
	o.AddFlags(flag.CommandLine)
	flag.Parse()
	o.Wire = true
	os.Exit(o.Run("insitu-cloud", func(cfg fleet.Config) (*fleet.Fleet, error) {
		// The fleet owns the listener for the whole run (Close stops it):
		// it keeps accepting so killed/restarted nodes can redial and
		// rejoin their session mid-schedule.
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "listening on %s, waiting for %d node(s)...\n", ln.Addr(), cfg.Nodes)
		f, err := fleet.Listen(cfg, ln)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "all %d node(s) connected\n", cfg.Nodes)
		return f, nil
	}))
}
