#!/usr/bin/env bash
# wire_smoke.sh — end-to-end proof that the wire deployment is the
# in-process fleet, bit for bit. Four legs, all built with -race:
#
#   1. insitu-fleet            — the in-process baseline stdout
#   2. insitu-cloud + 2 nodes  — same flags over real TCP; stdout must diff clean
#   3. ...through insitu-proxy — real dropped/corrupted/delayed frames; CRC,
#                                retransmission and idempotent commands must
#                                absorb every fault with identical stdout
#   4. crash + resume          — the cloud SIGKILLs itself after round 1's
#                                checkpoint (taking the node processes down
#                                with it), then a fresh cloud + fresh nodes
#                                resume from the snapshot; final stdout must
#                                still match the uninterrupted baseline
#
# Simulated link faults (-fault-rate/-uplink-fault-rate) stay on in every
# leg: they are seeded node-side state, so they must replay identically no
# matter which transport carries the rounds.
#
# INSITU_BIN_DIR, when set, names a dir of prebuilt race binaries so CI
# builds them once across the smoke jobs.
set -euo pipefail

cd "$(dirname "$0")/.."

work=$(mktemp -d "${TMPDIR:-/tmp}/wire-smoke.XXXXXX")
pids=()
cleanup() {
	for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
	rm -rf "$work"
}
trap cleanup EXIT

port=$((19433 + RANDOM % 1000))
pxport=$((port + 1000))
flags=(-nodes 2 -bootstrap 24 -rounds 8,8 -classes 4 -seed 7
	-fault-rate 0.3 -uplink-fault-rate 0.2)

if [[ -n "${INSITU_BIN_DIR:-}" ]]; then
	echo "== using prebuilt binaries from $INSITU_BIN_DIR =="
	for b in insitu-fleet insitu-cloud insitu-node insitu-proxy; do
		install -m 0755 "$INSITU_BIN_DIR/$b" "$work/"
	done
else
	echo "== build (race) =="
	go build -race -o "$work/" ./cmd/insitu-fleet ./cmd/insitu-cloud \
		./cmd/insitu-node ./cmd/insitu-proxy
fi

echo "== leg 1: in-process baseline =="
"$work/insitu-fleet" "${flags[@]}" >"$work/base.out" 2>/dev/null

# start_nodes ADDR — two agent processes against ADDR; pids land in n0/n1.
# -reconnect-window 0: these legs want the old one-session semantics
# (leg 4 relies on the agents dying with their SIGKILLed cloud — a
# reconnecting node would race the resumed cloud's fresh node set).
# Churn survival is churn_smoke.sh's job.
start_nodes() {
	"$work/insitu-node" -connect "$1" -node-id 0 -reconnect-window 0 2>>"$work/nodes.err" &
	n0=$!
	"$work/insitu-node" -connect "$1" -node-id 1 -reconnect-window 0 2>>"$work/nodes.err" &
	n1=$!
	pids+=("$n0" "$n1")
}

echo "== leg 2: cloud + 2 node processes over TCP =="
"$work/insitu-cloud" -listen "127.0.0.1:$port" "${flags[@]}" \
	>"$work/wire.out" 2>>"$work/cloud.err" &
cloud=$!
pids+=("$cloud")
start_nodes "127.0.0.1:$port"
wait "$cloud"
wait "$n0" "$n1"
diff "$work/base.out" "$work/wire.out"

echo "== leg 3: same, through a lossy proxy (drop 8%, corrupt 8%, delay <=2ms) =="
"$work/insitu-cloud" -listen "127.0.0.1:$port" "${flags[@]}" \
	>"$work/proxy.out" 2>>"$work/cloud.err" &
cloud=$!
pids+=("$cloud")
"$work/insitu-proxy" -listen "127.0.0.1:$pxport" -target "127.0.0.1:$port" \
	-seed 3 -drop 0.08 -corrupt 0.08 -max-delay 2ms 2>>"$work/proxy.err" &
proxy=$!
pids+=("$proxy")
start_nodes "127.0.0.1:$pxport"
wait "$cloud"
wait "$n0" "$n1"
kill -TERM "$proxy" 2>/dev/null || true
wait "$proxy" 2>/dev/null || true
grep 'insitu-proxy:' "$work/proxy.err" || true
diff "$work/base.out" "$work/proxy.out"

echo "== leg 4: SIGKILL the cloud after round 1, resume from the checkpoint =="
"$work/insitu-cloud" -listen "127.0.0.1:$port" "${flags[@]}" \
	-state-dir "$work/state" -ckpt-every 1 -kill-after-round 1 \
	>/dev/null 2>>"$work/cloud.err" &
cloud=$!
pids+=("$cloud")
start_nodes "127.0.0.1:$port"
wait "$cloud" || true # exit 137 is the point
wait "$n0" || true    # the agents die with their cloud
wait "$n1" || true
"$work/insitu-cloud" -listen "127.0.0.1:$port" "${flags[@]}" \
	-state-dir "$work/state" -resume \
	>"$work/resumed.out" 2>>"$work/cloud.err" &
cloud=$!
pids+=("$cloud")
start_nodes "127.0.0.1:$port"
wait "$cloud"
wait "$n0" "$n1"
diff "$work/base.out" "$work/resumed.out"

echo "wire-smoke: all four legs byte-identical"
