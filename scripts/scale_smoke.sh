#!/usr/bin/env bash
# scale_smoke.sh — prove the sharded ingestion path stands up at three
# orders of magnitude more nodes than the wire smokes, under the race
# detector, inside a CI wall-clock budget:
#
#   * one race-built insitu-fleet run at N=1000 across 8 ingestion
#     shards, with the scale valves open (-eval-samples, -max-*-samples,
#     -max-live-nodes) so the run is short but still exercises batching,
#     shard fan-in and LRU state spilling;
#   * the health plane must produce a verdict for every node
#     (insitu-top -require-verdicts) and count zero unhealthy nodes —
#     a straggler-starved shard or wedged batcher shows up here.
#
# Scratch space is a fresh mktemp dir removed on exit. CI that wants the
# artifacts sets SCALE_SMOKE_WORK to a path it uploads; an
# externally-named dir is left in place for collection.
# INSITU_BIN_DIR, when set, names a dir of prebuilt race binaries
# (insitu-fleet, insitu-top) so CI builds them once across the smoke
# jobs.
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ -n "${SCALE_SMOKE_WORK:-}" ]]; then
	work=$SCALE_SMOKE_WORK
	keep_work=1
	rm -rf "$work"
	mkdir -p "$work"
else
	work=$(mktemp -d "${TMPDIR:-/tmp}/scale-smoke.XXXXXX")
	keep_work=0
fi
cleanup() {
	((keep_work)) || rm -rf "$work"
}
trap cleanup EXIT

nodes=${SCALE_SMOKE_NODES:-1000}
shards=${SCALE_SMOKE_SHARDS:-8}

if [[ -n "${INSITU_BIN_DIR:-}" ]]; then
	echo "== using prebuilt binaries from $INSITU_BIN_DIR =="
	for b in insitu-fleet insitu-top; do
		install -m 0755 "$INSITU_BIN_DIR/$b" "$work/"
	done
else
	echo "== build (race) =="
	go build -race -o "$work/" ./cmd/insitu-fleet ./cmd/insitu-top
fi

echo "== race run: N=$nodes across $shards shards =="
time "$work/insitu-fleet" \
	-nodes "$nodes" -shards "$shards" \
	-bootstrap 8 -rounds 2 -classes 3 -seed 31 \
	-eval-samples 4 -max-round-samples 128 -max-calib-samples 128 \
	-max-live-nodes 128 -batch-size 64 \
	-health-out "$work/health.json" \
	>"$work/run.out" 2>"$work/run.err"
tail -n 3 "$work/run.out"

echo "== health: every node has a verdict, none unhealthy =="
"$work/insitu-top" -once -snapshot "$work/health.json" -require-verdicts \
	>"$work/top.txt"
tail -n 5 "$work/top.txt"
if ! grep -q '"unhealthy": 0' "$work/health.json"; then
	echo "scale-smoke: unhealthy nodes in the final snapshot:" >&2
	grep '"unhealthy"' "$work/health.json" >&2
	exit 1
fi
grep -q '"shard_queue_depths"' "$work/health.json" ||
	{ echo "scale-smoke: snapshot carries no ingest telemetry" >&2; exit 1; }

echo "scale-smoke: N=$nodes over $shards shards, race-clean, all nodes healthy"
