#!/usr/bin/env bash
# churn_smoke.sh — chaos proof for fleet membership: a wire fleet must
# survive node processes being SIGKILLed and restarted mid-run. Two legs,
# all binaries built with -race:
#
#   A. byte-identity under churn — cloud + 2 nodes through a lossy
#      insitu-proxy; two node processes are SIGKILLed mid-round (watching
#      the cloud's round markers) and immediately restarted. The
#      restarted process redials, the cloud rebuilds it from the last
#      round-boundary session blob plus a replay of the in-flight round
#      commands, and the final stdout must diff clean against the
#      undisturbed in-process baseline.
#
#   B. lease expiry at quorum — cloud + 3 nodes with -lease 2s
#      -min-quorum 2; one node is SIGKILLed and left dead. The fleet
#      must keep completing rounds with the survivors, report the dead
#      node DISCONNECTED, and the health plane (insitu-top over
#      -health-out) must show it disconnected and unhealthy.
#
# Scratch space is a fresh mktemp dir removed on exit. CI that wants the
# artifacts on failure sets CHURN_SMOKE_WORK to a path it uploads; an
# externally-named dir is left in place for collection.
# INSITU_BIN_DIR, when set, names a dir of prebuilt race binaries
# (insitu-fleet, insitu-cloud, insitu-node, insitu-proxy, insitu-top) so
# CI builds them once across the smoke jobs.
set -euo pipefail

cd "$(dirname "$0")/.."

if [[ -n "${CHURN_SMOKE_WORK:-}" ]]; then
	work=$CHURN_SMOKE_WORK
	keep_work=1
	rm -rf "$work"
	mkdir -p "$work"
else
	work=$(mktemp -d "${TMPDIR:-/tmp}/churn-smoke.XXXXXX")
	keep_work=0
fi
pids=()
cleanup() {
	for p in "${pids[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
	((keep_work)) || rm -rf "$work"
}
trap cleanup EXIT

port=$((21433 + RANDOM % 1000))
pxport=$((port + 1000))

if [[ -n "${INSITU_BIN_DIR:-}" ]]; then
	echo "== using prebuilt binaries from $INSITU_BIN_DIR =="
	for b in insitu-fleet insitu-cloud insitu-node insitu-proxy insitu-top; do
		install -m 0755 "$INSITU_BIN_DIR/$b" "$work/"
	done
else
	echo "== build (race) =="
	go build -race -o "$work/" ./cmd/insitu-fleet ./cmd/insitu-cloud \
		./cmd/insitu-node ./cmd/insitu-proxy ./cmd/insitu-top
fi

# start_node VAR ID ADDR LOG — one reconnecting agent process; its pid
# lands in VAR and in the cleanup list.
start_node() {
	"$work/insitu-node" -connect "$3" -node-id "$2" -reconnect-window 2m \
		2>>"$work/$4" &
	local pid=$!
	pids+=("$pid")
	printf -v "$1" '%s' "$pid"
}

# wait_for_round N FILE — block until the cloud's stderr announces round
# N starting; the marker prints right before the round runs, so a kill
# fired on it lands mid-round.
wait_for_round() {
	local deadline=$((SECONDS + 180))
	until grep -q "^round $1 " "$2" 2>/dev/null; do
		if ((SECONDS >= deadline)); then
			echo "churn-smoke: timed out waiting for round $1" >&2
			exit 1
		fi
		sleep 0.1
	done
}

flags=(-nodes 2 -bootstrap 24 -rounds 8,8,8,8,8,8 -classes 4 -seed 7
	-fault-rate 0.3 -uplink-fault-rate 0.2)

echo "== leg A baseline: undisturbed in-process run =="
"$work/insitu-fleet" "${flags[@]}" >"$work/base.out" 2>/dev/null

echo "== leg A: SIGKILL + restart two node processes mid-round, via lossy proxy =="
"$work/insitu-cloud" -listen "127.0.0.1:$port" "${flags[@]}" -lease 30s \
	>"$work/churn.out" 2>"$work/cloud-a.err" &
cloud=$!
pids+=("$cloud")
"$work/insitu-proxy" -listen "127.0.0.1:$pxport" -target "127.0.0.1:$port" \
	-seed 3 -drop 0.05 -corrupt 0.05 -max-delay 2ms 2>"$work/proxy.err" &
proxy=$!
pids+=("$proxy")
start_node n0 0 "127.0.0.1:$pxport" nodes-a.err
start_node n1 1 "127.0.0.1:$pxport" nodes-a.err

wait_for_round 2 "$work/cloud-a.err"
echo "-- SIGKILL node 0 mid-round 2, restart"
kill -9 "$n0" 2>/dev/null || true
start_node n0 0 "127.0.0.1:$pxport" nodes-a.err

wait_for_round 4 "$work/cloud-a.err"
echo "-- SIGKILL node 1 mid-round 4, restart"
kill -9 "$n1" 2>/dev/null || true
start_node n1 1 "127.0.0.1:$pxport" nodes-a.err

wait_for_round 6 "$work/cloud-a.err"
wait "$cloud"
wait "$n0" "$n1"
kill -TERM "$proxy" 2>/dev/null || true
wait "$proxy" 2>/dev/null || true
diff "$work/base.out" "$work/churn.out"
echo "leg A: stdout byte-identical through two SIGKILL/restart cycles"

echo "== leg B: node left dead past its lease; rounds continue at quorum =="
bflags=(-nodes 3 -bootstrap 24 -rounds 8,8,8,8,8 -classes 4 -seed 7
	-fault-rate 0.3 -uplink-fault-rate 0.2)
"$work/insitu-cloud" -listen "127.0.0.1:$port" "${bflags[@]}" \
	-lease 2s -min-quorum 2 -health-out "$work/health.json" \
	>"$work/lease.out" 2>"$work/cloud-b.err" &
cloud=$!
pids+=("$cloud")
start_node n0 0 "127.0.0.1:$port" nodes-b.err
start_node n1 1 "127.0.0.1:$port" nodes-b.err
start_node n2 2 "127.0.0.1:$port" nodes-b.err

wait_for_round 2 "$work/cloud-b.err"
echo "-- SIGKILL node 2; it stays dead"
kill -9 "$n2" 2>/dev/null || true

wait "$cloud"
wait "$n0" "$n1"
grep -q 'DISCONNECTED' "$work/lease.out"
"$work/insitu-top" -once -snapshot "$work/health.json" >"$work/top.txt"
cat "$work/top.txt"
grep 'DISCONNECTED' "$work/top.txt" | grep -q 'unhealthy'
grep -q '"disconnected": true' "$work/health.json"
echo "leg B: fleet kept its rounds at quorum; dead node parked, unhealthy, DISCONNECTED"

echo "churn-smoke: both legs passed"
