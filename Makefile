# Development targets for the insitu reproduction. `make check` is the
# pre-commit gate: vet, build, the full test suite under the race
# detector, and a benchmark smoke run of the compute-kernel hot path.

GO ?= go

.PHONY: check vet build test race bench-smoke bench-kernels bench-json clean

check: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick proof that the blocked kernels still run fast and allocation-free:
# a short -benchtime keeps this under a minute.
bench-smoke:
	$(GO) test -run NONE -bench 'MatMul|Conv|Dense|TrainStep' -benchmem -benchtime 200ms \
		./internal/tensor/ ./internal/nn/ .

# Full kernel/layer benchmark sweep at the default benchtime.
bench-kernels:
	$(GO) test -run NONE -bench 'MatMul|Im2Col|Col2Im|Conv|Dense' -benchmem \
		./internal/tensor/ ./internal/nn/

# Machine-readable record of the paper-artifact generators.
bench-json:
	$(GO) run ./cmd/insitu-bench -exp all -scale small -json BENCH_insitu.json >/dev/null

clean:
	$(GO) clean ./...
