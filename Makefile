# Development targets for the insitu reproduction. `make check` is the
# pre-commit gate: vet, build, the full test suite under the race
# detector, and a benchmark smoke run of the compute-kernel hot path.

GO ?= go

.PHONY: check vet build test race race-short bench-smoke bench-kernels bench-kernels-json bench-json bench-diff bench-fleet bench-fleet-diff trace-smoke fault-smoke crash-smoke fleet-smoke health-smoke wire-smoke churn-smoke scale-smoke clean

check: vet build race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiments package runs full learning loops; under the race
# detector it exceeds go test's default 10m per-package timeout.
race:
	$(GO) test -race -timeout 30m ./...

# The CI race gate: -short trims the long learning loops (fleet
# crash-resume, experiments) to keep the job well under ten minutes
# while still driving every concurrent code path.
race-short:
	$(GO) test -race -short -timeout 20m ./...

# Quick proof that the blocked kernels still run fast and allocation-free:
# a short -benchtime keeps this under a minute.
bench-smoke:
	$(GO) test -run NONE -bench 'MatMul|Conv|Dense|TrainStep' -benchmem -benchtime 200ms \
		./internal/tensor/ ./internal/nn/ .

# Full kernel/layer benchmark sweep at the default benchtime, then
# regenerate the machine-readable kernel record (GEMM at GOMAXPROCS
# 1/2/4/8 plus the int8-vs-float32 layer rows; prior rounds are kept).
bench-kernels:
	$(GO) test -run NONE -bench 'MatMul|Im2Col|Col2Im|Conv|Dense' -benchmem \
		./internal/tensor/ ./internal/nn/
	$(GO) run ./cmd/insitu-kernelbench -out BENCH_kernels.json

# Regenerate only BENCH_kernels.json (no go-test sweep).
bench-kernels-json:
	$(GO) run ./cmd/insitu-kernelbench -out BENCH_kernels.json

# Perf-regression gate: measure fresh at a short benchtime and compare
# against the committed record. The tolerance is generous (3 = fail past
# 4x) because CI runners are noisy and share cores; the gate exists to
# catch order-of-magnitude kernel regressions, not 10% drift.
bench-diff:
	$(GO) run ./cmd/insitu-kernelbench -out bench-diff-fresh.json -benchtime 100ms
	$(GO) run ./cmd/insitu-benchdiff -tolerance 3 BENCH_kernels.json bench-diff-fresh.json
	rm -f bench-diff-fresh.json

# Regenerate BENCH_fleet.json, the committed record of the fleet-scale
# sweep (N=1000 across 8 ingestion shards): p99 admission latency, peak
# heap, and deterministic bytes-per-upload. Takes a few minutes on one
# core.
bench-fleet:
	$(GO) run ./cmd/insitu-fleetbench -out BENCH_fleet.json

# Fleet perf-regression gate: measure fresh and compare against the
# committed record. Wall-clock (p99 admission) gets a very generous
# tolerance — it scales with runner speed — while bytes_per_upload is
# deterministic and gated tight by -bytes-tolerance's default.
bench-fleet-diff:
	$(GO) run ./cmd/insitu-fleetbench -out bench-fleet-fresh.json
	$(GO) run ./cmd/insitu-benchdiff -tolerance 9 BENCH_fleet.json bench-fleet-fresh.json
	rm -f bench-fleet-fresh.json

# Machine-readable record of the paper-artifact generators.
bench-json:
	$(GO) run ./cmd/insitu-bench -exp all -scale small -json BENCH_insitu.json >/dev/null

# End-to-end observability proof: run a small closed-loop node simulation
# with tracing on, then validate the JSONL (dense seq, monotonic ts) and
# assert the stage/upload/deploy/planner events all fired.
trace-smoke:
	$(GO) run ./cmd/insitu-node -variant d -bootstrap 24 -stages 16,16 -classes 4 \
		-trace-out trace-smoke.jsonl >/dev/null
	$(GO) run ./cmd/insitu-tracecheck \
		-require core.stage,core.upload,core.deploy,planner.plan trace-smoke.jsonl
	rm -f trace-smoke.jsonl

# Resilience proof: fuzz the CRC-framed bundle decoder and the wire
# frame decoder briefly, then run a closed-loop node simulation over a
# lossy downlink with an outage window — retries, rollback and graceful
# degradation must not panic.
fault-smoke:
	$(GO) test -run Fuzz -fuzz FuzzFrame -fuzztime 10s ./internal/wire
	$(GO) test -run Fuzz -fuzz FuzzDecode -fuzztime 10s ./internal/deploy
	$(GO) run ./cmd/insitu-node -variant d -bootstrap 24 -stages 16,16 -classes 4 \
		-fault-rate 0.4 -outage 1:2 >/dev/null

# Durability proof: run a node simulation to completion, run it again
# with checkpointing and a self-SIGKILL after stage 1 (exit 137 is the
# point, hence the leading -), resume from the on-disk snapshot, and
# demand a byte-identical report. Uses a prebuilt binary — `go run`
# would report the child's SIGKILL as its own failure.
crash-smoke:
	$(GO) build -o crash-smoke-node ./cmd/insitu-node
	./crash-smoke-node -variant d -bootstrap 24 -stages 16,16 -classes 4 \
		-fault-rate 0.3 > crash-smoke-base.txt
	-./crash-smoke-node -variant d -bootstrap 24 -stages 16,16 -classes 4 \
		-fault-rate 0.3 -state-dir crash-smoke-state -kill-after-stage 1 \
		> /dev/null 2>&1
	./crash-smoke-node -variant d -bootstrap 24 -stages 16,16 -classes 4 \
		-fault-rate 0.3 -state-dir crash-smoke-state -resume > crash-smoke-resumed.txt
	diff crash-smoke-base.txt crash-smoke-resumed.txt
	rm -rf crash-smoke-node crash-smoke-base.txt crash-smoke-resumed.txt crash-smoke-state

# Fleet proof: a 4-node concurrent run with one node in permanent
# blackout and a lossy downlink, traced end to end; the trace must be
# well-formed and carry the fleet round/upload/deploy events.
fleet-smoke:
	$(GO) run ./cmd/insitu-fleet -nodes 4 -bootstrap 24 -rounds 16,16 -classes 4 \
		-outage-nodes 3 -fault-rate 0.3 -max-round-samples 64 \
		-trace-out fleet-smoke.jsonl >/dev/null
	$(GO) run ./cmd/insitu-tracecheck \
		-require fleet.round,fleet.upload,fleet.deploy fleet-smoke.jsonl
	rm -f fleet-smoke.jsonl

# Health-plane proof: an 8-node fleet with one node in permanent
# blackout, traced; every node must end with a verdict (insitu-top
# -require-verdicts), the blackout node must read unhealthy, and the
# fleet.health events must validate alongside the round events.
health-smoke:
	$(GO) run ./cmd/insitu-fleet -nodes 8 -bootstrap 24 -rounds 16,16 -classes 4 \
		-outage-nodes 5 -health-out health-smoke.json \
		-trace-out health-smoke.jsonl >/dev/null
	$(GO) run ./cmd/insitu-tracecheck -stats \
		-require fleet.round,fleet.health health-smoke.jsonl
	$(GO) run ./cmd/insitu-top -once -snapshot health-smoke.json -require-verdicts
	grep -q '"unhealthy": 1' health-smoke.json
	rm -f health-smoke.json health-smoke.jsonl

# Wire proof: the fleet across real process boundaries. Four legs (all
# race-built): in-process baseline, cloud + 2 insitu-node processes over
# TCP, the same through a lossy insitu-proxy, and a crash/resume of the
# cloud process — every leg's stdout must be byte-identical.
wire-smoke:
	./scripts/wire_smoke.sh

# Churn proof: node processes SIGKILLed and restarted mid-round (through
# a lossy proxy) must leave the fleet's stdout byte-identical to an
# undisturbed run, and a node left dead past its lease must be parked at
# MinQuorum with the health plane reporting it DISCONNECTED/unhealthy.
# Scratch lives in a tmpdir; CI sets CHURN_SMOKE_WORK to collect it.
churn-smoke:
	./scripts/churn_smoke.sh

# Scale proof: a race-built N=1000 fleet across 8 ingestion shards with
# the scale valves open; the health plane must verdict every node with
# zero unhealthy. Scratch lives in a tmpdir; CI sets SCALE_SMOKE_WORK.
scale-smoke:
	./scripts/scale_smoke.sh

clean:
	rm -f trace-smoke.jsonl fleet-smoke.jsonl health-smoke.json health-smoke.jsonl bench-diff-fresh.json bench-fleet-fresh.json
	rm -rf crash-smoke-node crash-smoke-base.txt crash-smoke-resumed.txt crash-smoke-state churn-smoke-work
	$(GO) clean ./...
